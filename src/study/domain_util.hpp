// Fig. 7: annual HPC site/system utilization by scientific domain, and
// the Sec. V-B projection of flop/s relevance ("ANL's ALCF and the
// K computer would achieve ~14% and ~11% of peak when projecting over
// the annual node-hours").
#pragma once

#include <string>
#include <vector>

#include "kernels/kernel.hpp"
#include "study/study.hpp"

namespace fpr::study {

/// Domain share of one site's annual node-hours (fractions sum to ~1).
struct SiteUtilization {
  std::string site;
  // Shares keyed in the paper's legend order:
  // geo, chm, phy, qcd, mat, eng, mcs, bio, oth.
  double geo = 0, chm = 0, phy = 0, qcd = 0, mat = 0, eng = 0, mcs = 0,
         bio = 0, oth = 0;

  [[nodiscard]] double total() const {
    return geo + chm + phy + qcd + mat + eng + mcs + bio + oth;
  }
};

/// The embedded Fig. 7 dataset (shares read off the published figure;
/// see DESIGN.md on substitutions).
const std::vector<SiteUtilization>& site_utilization();

/// Representative proxy per domain (Table II mapping used in Sec. V-B).
kernels::Domain domain_of_label(const std::string& label);

/// One kernel's contribution to the Fig. 7 projection, decoupled from
/// StudyResults so the incremental evaluator and the full study feed the
/// identical projection arithmetic.
struct ProjectionPoint {
  kernels::Domain domain = kernels::Domain::math_cs;
  bool has_fp = false;  ///< measured FP ops > 0 (I/O and graph proxies: no)
  double pct_of_peak = 0.0;
};

/// Project a site's achievable fraction-of-peak flop/s by weighting the
/// per-domain mean %peak of the representative proxies with the site's
/// node-hour shares (renormalized over the covered share). Returns
/// percent of peak.
double project_site_pct_peak(const SiteUtilization& site,
                             const std::vector<ProjectionPoint>& points);

/// Convenience overload over full study results for `machine`.
double project_site_pct_peak(const SiteUtilization& site,
                             const StudyResults& results,
                             const std::string& machine_short_name);

}  // namespace fpr::study
