#include "study/study_engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "arch/machines.hpp"
#include "common/execution_context.hpp"
#include "common/thread_pool.hpp"
#include "memsim/sim_cache.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"

namespace fpr::study {

StudyEngine::StudyEngine(StudyConfig cfg, KernelFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {}

StudyResults StudyEngine::run() {
  const auto machines =
      cfg_.machines.empty() ? arch::all_machines() : cfg_.machines;
  auto all = factory_ ? factory_() : kernels::make_all();

  // Selection in factory (paper) order; result slots are fixed up front
  // so completion order never influences output order.
  std::vector<std::unique_ptr<kernels::ProxyKernel>> selected;
  for (auto& k : all) {
    const auto& abbrev = k->info().abbrev;
    if (cfg_.kernels.empty() ||
        std::find(cfg_.kernels.begin(), cfg_.kernels.end(), abbrev) !=
            cfg_.kernels.end()) {
      selected.push_back(std::move(k));
    }
  }

  StudyResults results;
  results.kernels.resize(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    results.kernels[i].info = selected[i]->info();
    results.kernels[i].machines.resize(machines.size());
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned jobs = std::max(1u, cfg_.jobs != 0 ? cfg_.jobs : hw);
  // More producers than kernels would only spawn threads (and, with
  // threads=0, hardware-sized pools) that claim nothing — clamp.
  const unsigned kernel_jobs = std::max<unsigned>(
      1, std::min<std::size_t>(
             cfg_.kernel_jobs != 0 ? cfg_.kernel_jobs : hw,
             selected.size()));

  // Scheduler state: kernel_jobs producers claim kernel indices from a
  // shared cursor and run each kernel in a private ExecutionContext
  // (no shared pool, no shared tallies — runs are fully isolated), then
  // enqueue the kernel's (kernel, machine) stages; the engine pool's
  // workers drain the queue as measurements land.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::pair<std::size_t, std::size_t>> ready;
  unsigned live_producers = kernel_jobs;
  bool produced_all = false;
  bool aborted = false;
  std::exception_ptr error;
  std::atomic<std::uint64_t> machine_evals{0};
  std::atomic<std::uint64_t> kernel_runs{0};
  std::atomic<std::size_t> next_kernel{0};

  auto abort_with = [&](std::exception_ptr e) {
    std::lock_guard lock(mu);
    aborted = true;
    if (!error) error = std::move(e);
    cv.notify_all();
  };

  // One memoization store for the whole run: machine stages and every
  // producer context share it, so identical hierarchy replays — across
  // repeats, kernels with equal sliced specs, or any jobs split — are
  // simulated once. Memoized results are the results a fresh simulation
  // produces, so byte-identity across (kernel_jobs, jobs) is unaffected.
  auto sim_cache = cfg_.sim_cache ? cfg_.sim_cache
                                  : std::make_shared<memsim::SimCache>();

  auto machine_stage = [&](std::size_t ki, std::size_t mi) {
    KernelResult& kr = results.kernels[ki];
    MachineResult& mr = kr.machines[mi];
    const arch::CpuSpec& cpu = machines[mi];
    mr.cpu = cpu;
    mr.mem = model::profile_memory(cpu, kr.meas, cfg_.trace_refs,
                                   model::kDefaultScaleShift, sim_cache.get());
    mr.perf = model::evaluate_at_turbo(cpu, kr.meas, mr.mem);
    if (cfg_.freq_sweep) {
      for (const auto& fs : cpu.frequency_sweep()) {
        mr.freq_sweep.emplace_back(
            fs, model::evaluate(cpu, fs.ghz, kr.meas, mr.mem));
      }
    }
    machine_evals.fetch_add(1, std::memory_order_relaxed);
  };

  auto produce = [&] {
    try {
      // One context per producer, reused across the kernels it claims:
      // a producer runs its kernels serially, so reuse keeps the
      // isolation (and, since assays are snapshot deltas, the
      // byte-identity) while avoiding a pool construction per kernel.
      ExecutionContext ctx(cfg_.threads);
      ctx.lease_sim_cache(sim_cache);
      for (;;) {
        {
          std::lock_guard lock(mu);
          if (aborted) break;
        }
        const std::size_t ki =
            next_kernel.fetch_add(1, std::memory_order_relaxed);
        if (ki >= selected.size()) break;
        kernels::RunConfig rc;
        rc.scale = cfg_.scale;
        rc.threads = cfg_.threads;
        rc.seed = cfg_.seed;
        auto meas = selected[ki]->run(ctx, rc);  // throws on failed verify
        kernel_runs.fetch_add(1, std::memory_order_relaxed);
        if (cfg_.canonical_timing) meas.host_seconds = 0.0;
        results.kernels[ki].meas = std::move(meas);
        {
          std::lock_guard lock(mu);
          for (std::size_t mi = 0; mi < machines.size(); ++mi) {
            ready.emplace_back(ki, mi);
          }
        }
        cv.notify_all();
      }
    } catch (...) {
      // Kernel verification failure, or the context's pool could not be
      // built: abort the study — nothing may escape a producer thread.
      abort_with(std::current_exception());
    }
    {
      std::lock_guard lock(mu);
      if (--live_producers == 0) produced_all = true;
    }
    cv.notify_all();
  };

  auto consume = [&] {
    for (;;) {
      std::pair<std::size_t, std::size_t> task;
      {
        std::unique_lock lock(mu);
        cv.wait(lock,
                [&] { return !ready.empty() || produced_all || aborted; });
        if (aborted) return;  // fail-fast: drop queued stages
        if (ready.empty()) {
          if (produced_all) return;
          continue;
        }
        task = ready.front();
        ready.pop_front();
      }
      try {
        machine_stage(task.first, task.second);
      } catch (...) {
        abort_with(std::current_exception());
        return;
      }
    }
  };

  // Producers get dedicated threads (each spends its time inside kernel
  // runs); the calling thread and the engine pool's workers drain the
  // machine-stage queue. Producer exceptions never escape produce().
  // The join guard makes every exit path safe: if spawning a producer
  // or running the engine pool throws (thread exhaustion), the live
  // producers are told to abort and joined before unwinding destroys
  // the state they reference — a joinable std::thread destructor would
  // otherwise call std::terminate.
  ThreadPool pool(jobs);  // before any producer exists: may throw freely
  std::vector<std::thread> producers;
  producers.reserve(kernel_jobs);
  struct ProducerJoiner {
    std::vector<std::thread>& threads;
    std::mutex& mu;
    bool& aborted;
    ~ProducerJoiner() {
      {
        std::lock_guard lock(mu);
        aborted = true;  // no-op on the normal path: all producers done
      }
      for (auto& t : threads) {
        if (t.joinable()) t.join();
      }
    }
  } joiner{producers, mu, aborted};
  for (unsigned p = 0; p < kernel_jobs; ++p) producers.emplace_back(produce);

  pool.parallel_for(jobs, [&](std::size_t begin, std::size_t end, unsigned) {
    for (std::size_t i = begin; i < end; ++i) consume();
  });
  for (auto& t : producers) t.join();

  stats_.kernel_runs = kernel_runs.load(std::memory_order_relaxed);
  stats_.machine_evals = machine_evals.load(std::memory_order_relaxed);
  const auto sim_stats = sim_cache->stats();
  stats_.sim_hits = sim_stats.hits;
  stats_.sim_misses = sim_stats.misses;
  if (error) std::rethrow_exception(error);
  return results;
}

StudyConfig golden_config() {
  StudyConfig cfg;
  cfg.scale = 0.2;
  cfg.threads = 1;  // host-independent op counts and FP reductions
  cfg.trace_refs = 120'000;
  cfg.jobs = 1;
  cfg.kernel_jobs = 1;
  cfg.canonical_timing = true;
  // One kernel per workload class: stencil, dense, gather, stream, I/O,
  // plus the paper's Phi-hostile outlier (branchy scalar code).
  cfg.kernels = {"AMG", "HPL", "XSBn", "BABL2", "MxIO", "NGSA"};
  return cfg;
}

}  // namespace fpr::study
