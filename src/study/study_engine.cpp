#include "study/study_engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "arch/machines.hpp"
#include "common/thread_pool.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"

namespace fpr::study {

StudyEngine::StudyEngine(StudyConfig cfg, KernelFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {}

StudyResults StudyEngine::run() {
  const auto machines = arch::all_machines();
  auto all = factory_ ? factory_() : kernels::make_all();

  // Selection in factory (paper) order; result slots are fixed up front
  // so completion order never influences output order.
  std::vector<std::unique_ptr<kernels::ProxyKernel>> selected;
  for (auto& k : all) {
    const auto& abbrev = k->info().abbrev;
    if (cfg_.kernels.empty() ||
        std::find(cfg_.kernels.begin(), cfg_.kernels.end(), abbrev) !=
            cfg_.kernels.end()) {
      selected.push_back(std::move(k));
    }
  }

  StudyResults results;
  results.kernels.resize(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    results.kernels[i].info = selected[i]->info();
    results.kernels[i].machines.resize(machines.size());
  }

  const unsigned jobs = std::max(
      1u, cfg_.jobs != 0 ? cfg_.jobs : std::thread::hardware_concurrency());

  // Scheduler state: the producer (engine worker 0) runs kernels
  // serially and enqueues their (kernel, machine) stages; every worker
  // (producer included, once it runs dry) drains the queue.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::pair<std::size_t, std::size_t>> ready;
  bool produced_all = false;
  bool aborted = false;
  std::exception_ptr error;
  std::atomic<std::uint64_t> machine_evals{0};
  std::uint64_t kernel_runs = 0;  // producer-only, no sharing

  auto abort_with = [&](std::exception_ptr e) {
    std::lock_guard lock(mu);
    aborted = true;
    if (!error) error = std::move(e);
    cv.notify_all();
  };

  auto machine_stage = [&](std::size_t ki, std::size_t mi) {
    KernelResult& kr = results.kernels[ki];
    MachineResult& mr = kr.machines[mi];
    const arch::CpuSpec& cpu = machines[mi];
    mr.cpu = cpu;
    mr.mem = model::profile_memory(cpu, kr.meas, cfg_.trace_refs);
    mr.perf = model::evaluate_at_turbo(cpu, kr.meas, mr.mem);
    if (cfg_.freq_sweep) {
      for (const auto& fs : cpu.frequency_sweep()) {
        mr.freq_sweep.emplace_back(
            fs, model::evaluate(cpu, fs.ghz, kr.meas, mr.mem));
      }
    }
    machine_evals.fetch_add(1, std::memory_order_relaxed);
  };

  auto produce = [&] {
    for (std::size_t ki = 0; ki < selected.size(); ++ki) {
      {
        std::lock_guard lock(mu);
        if (aborted) break;
      }
      kernels::RunConfig rc;
      rc.scale = cfg_.scale;
      rc.threads = cfg_.threads;
      rc.seed = cfg_.seed;
      try {
        auto meas = selected[ki]->run(rc);  // throws on failed verification
        ++kernel_runs;
        if (cfg_.canonical_timing) meas.host_seconds = 0.0;
        results.kernels[ki].meas = std::move(meas);
      } catch (...) {
        abort_with(std::current_exception());
        break;
      }
      {
        std::lock_guard lock(mu);
        for (std::size_t mi = 0; mi < machines.size(); ++mi) {
          ready.emplace_back(ki, mi);
        }
      }
      cv.notify_all();
    }
    {
      std::lock_guard lock(mu);
      produced_all = true;
    }
    cv.notify_all();
  };

  auto consume = [&] {
    for (;;) {
      std::pair<std::size_t, std::size_t> task;
      {
        std::unique_lock lock(mu);
        cv.wait(lock,
                [&] { return !ready.empty() || produced_all || aborted; });
        if (aborted) return;  // fail-fast: drop queued stages
        if (ready.empty()) {
          if (produced_all) return;
          continue;
        }
        task = ready.front();
        ready.pop_front();
      }
      try {
        machine_stage(task.first, task.second);
      } catch (...) {
        abort_with(std::current_exception());
        return;
      }
    }
  };

  // One engine worker per job slot; worker 0 (the calling thread) is the
  // producer and joins the drain once every kernel has run.
  ThreadPool pool(jobs);
  pool.parallel_for(jobs, [&](std::size_t begin, std::size_t end, unsigned) {
    for (std::size_t i = begin; i < end; ++i) {
      if (i == 0) produce();
      consume();
    }
  });

  stats_.kernel_runs = kernel_runs;
  stats_.machine_evals = machine_evals.load(std::memory_order_relaxed);
  if (error) std::rethrow_exception(error);
  return results;
}

StudyConfig golden_config() {
  StudyConfig cfg;
  cfg.scale = 0.2;
  cfg.threads = 1;  // host-independent op counts and FP reductions
  cfg.trace_refs = 120'000;
  cfg.jobs = 1;
  cfg.canonical_timing = true;
  // One kernel per workload class: stencil, dense, gather, stream, I/O,
  // plus the paper's Phi-hostile outlier (branchy scalar code).
  cfg.kernels = {"AMG", "HPL", "XSBn", "BABL2", "MxIO", "NGSA"};
  return cfg;
}

}  // namespace fpr::study
