#include "study/explore.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "arch/machines.hpp"
#include "common/thread_pool.hpp"

namespace fpr::study {

const VariantScore* ExploreResults::find(std::string_view name) const {
  if (baseline.name() == name) return &baseline;
  for (const auto& v : variants) {
    if (v.name() == name) return &v;
  }
  return nullptr;
}

ExploreEngine::ExploreEngine(ExploreConfig cfg,
                             StudyEngine::KernelFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {}

ExploreResults ExploreEngine::run() {
  arch::CpuSpec base;
  bool found = false;
  for (auto& cpu : arch::all_machines()) {
    if (cpu.short_name == cfg_.base) {
      base = std::move(cpu);
      found = true;
      break;
    }
  }
  if (!found) {
    throw std::invalid_argument("unknown base machine '" + cfg_.base + "'");
  }

  const auto specs = cfg_.variants.empty()
                         ? arch::builtin_variant_specs(base)
                         : cfg_.variants;
  // Dedup on the canonical resolved machine, not the spec string: "a+b"
  // vs "b+a" and factor respellings ("dram-bw=1.5" vs "dram-bw=1.50")
  // derive the same CpuSpec and must be rejected as loudly as a literal
  // repeat. The base's own digest is seeded so an identity spec (e.g.
  // "cores=1") cannot silently duplicate the baseline row either.
  std::set<std::string> seen_specs;
  std::map<std::string, std::string> canonical;  // digest -> first spec
  canonical.emplace(arch::canonical_cpu_digest(base), "<the base machine>");
  std::vector<arch::MachineVariant> variants;
  variants.reserve(specs.size());
  for (const auto& spec : specs) {
    if (!seen_specs.insert(spec).second) {
      throw std::invalid_argument("duplicate variant spec '" + spec + "'");
    }
    auto v = arch::derive_variant(base, spec);  // re-validates
    const auto [it, inserted] =
        canonical.emplace(arch::canonical_cpu_digest(v.cpu), spec);
    if (!inserted) {
      throw std::invalid_argument("variant spec '" + spec +
                                  "' derives the same machine as " +
                                  (it->second == "<the base machine>"
                                       ? it->second
                                       : "'" + it->second + "'"));
    }
    variants.push_back(std::move(v));
  }

  // Phase 1: measure every kernel on the base exactly once.
  VariantEvaluator::Config ec;
  ec.kernels = cfg_.kernels;
  ec.scale = cfg_.scale;
  ec.threads = cfg_.threads;
  ec.trace_refs = cfg_.trace_refs;
  ec.seed = cfg_.seed;
  ec.jobs = cfg_.jobs;
  ec.kernel_jobs = cfg_.kernel_jobs;
  const VariantEvaluator evaluator(base, ec, factory_);

  // Phase 2: score the baseline and every variant from the cached
  // measurements — model arithmetic only, slot-ordered so any jobs
  // split is a pure reordering.
  ExploreResults out;
  out.base = base.short_name;
  out.baseline = evaluator.evaluate(arch::MachineVariant{"", std::move(base)});
  out.variants.resize(variants.size());

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned jobs = std::max(1u, cfg_.jobs != 0 ? cfg_.jobs : hw);
  if (jobs == 1 || variants.size() <= 1) {
    for (std::size_t i = 0; i < variants.size(); ++i) {
      out.variants[i] = evaluator.evaluate(variants[i]);
    }
  } else {
    ThreadPool pool(jobs);
    pool.parallel_for(variants.size(),
                      [&](std::size_t begin, std::size_t end, unsigned) {
                        for (std::size_t i = begin; i < end; ++i) {
                          out.variants[i] = evaluator.evaluate(variants[i]);
                        }
                      });
  }

  stats_ = evaluator.measurement_stats();
  // Count the scored (kernel, variant) grid like the monolithic engine
  // did, and report replay-cache totals across both phases.
  stats_.machine_evals +=
      variants.size() * static_cast<std::uint64_t>(evaluator.kernel_count());
  const auto sim = evaluator.sim_stats();
  stats_.sim_hits = sim.hits;
  stats_.sim_misses = sim.misses;
  evaluator_stats_ = evaluator.stats();
  return out;
}

ExploreConfig golden_explore_config() {
  ExploreConfig cfg;
  cfg.base = "KNL";
  cfg.variants = {};  // the built-in grid — gated along with the results
  cfg.kernels = golden_config().kernels;
  cfg.scale = 0.2;
  cfg.threads = 1;  // host-independent op counts, as for the study golden
  cfg.trace_refs = 120'000;
  cfg.seed = 42;
  cfg.jobs = 1;
  cfg.kernel_jobs = 1;
  return cfg;
}

}  // namespace fpr::study
