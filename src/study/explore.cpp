#include "study/explore.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include "arch/machines.hpp"
#include "common/units.hpp"
#include "study/domain_util.hpp"

namespace fpr::study {

namespace {

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Mean Fig. 7 site projection: the %-of-peak the machine would sustain
/// over each surveyed site's annual node-hour mix, averaged across the
/// sites (one procurement-relevant scalar per variant).
double mean_site_pct_peak(const StudyResults& results,
                          const std::string& machine) {
  const auto& sites = site_utilization();
  double sum = 0.0;
  for (const auto& site : sites) {
    sum += project_site_pct_peak(site, results, machine);
  }
  return sites.empty() ? 0.0 : sum / static_cast<double>(sites.size());
}

VariantScore score_variant(const StudyResults& results,
                           arch::MachineVariant variant,
                           std::size_t machine_index) {
  VariantScore score;
  score.variant = std::move(variant);
  const arch::CpuSpec& cpu = score.variant.cpu;

  std::vector<double> time_ratios, energy_ratios, fp64_pcts;
  for (const auto& k : results.kernels) {
    const MachineResult& mr = k.machines[machine_index];
    const MachineResult& base = k.machines[0];
    KernelProjection p;
    p.abbrev = k.info.abbrev;
    p.mem = mr.mem;
    p.perf = mr.perf;
    p.time_ratio = mr.perf.seconds / base.perf.seconds;
    p.energy_ratio = (mr.perf.power_w * mr.perf.seconds) /
                     (base.perf.power_w * base.perf.seconds);
    const auto ops = k.meas.ops_on(cpu.has_mcdram());
    if (ops.fp64 > 0) {
      const double achieved_gflops =
          static_cast<double>(ops.fp64) / mr.perf.seconds / kGiga;
      p.fp64_pct_peak =
          100.0 * achieved_gflops / cpu.peak_gflops(arch::Precision::fp64);
      fp64_pcts.push_back(p.fp64_pct_peak);
    }
    time_ratios.push_back(p.time_ratio);
    energy_ratios.push_back(p.energy_ratio);
    score.kernels.push_back(std::move(p));
  }

  score.geomean_time_ratio = geomean(time_ratios);
  score.geomean_energy_ratio = geomean(energy_ratios);
  if (!fp64_pcts.empty()) {
    double sum = 0.0;
    for (const double v : fp64_pcts) sum += v;
    score.mean_fp64_pct_peak = sum / static_cast<double>(fp64_pcts.size());
  }
  score.site_pct_peak = mean_site_pct_peak(results, cpu.short_name);
  return score;
}

}  // namespace

const VariantScore* ExploreResults::find(std::string_view name) const {
  if (baseline.name() == name) return &baseline;
  for (const auto& v : variants) {
    if (v.name() == name) return &v;
  }
  return nullptr;
}

ExploreEngine::ExploreEngine(ExploreConfig cfg,
                             StudyEngine::KernelFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {}

ExploreResults ExploreEngine::run() {
  arch::CpuSpec base;
  bool found = false;
  for (auto& cpu : arch::all_machines()) {
    if (cpu.short_name == cfg_.base) {
      base = std::move(cpu);
      found = true;
      break;
    }
  }
  if (!found) {
    throw std::invalid_argument("unknown base machine '" + cfg_.base + "'");
  }

  const auto specs = cfg_.variants.empty()
                         ? arch::builtin_variant_specs(base)
                         : cfg_.variants;
  std::set<std::string> seen;
  std::vector<arch::MachineVariant> variants;
  variants.reserve(specs.size());
  for (const auto& spec : specs) {
    if (!seen.insert(spec).second) {
      throw std::invalid_argument("duplicate variant spec '" + spec + "'");
    }
    variants.push_back(arch::derive_variant(base, spec));  // re-validates
  }

  // One study over [base, variants...]: each kernel runs instrumented
  // once and streams a (kernel, machine) stage per grid machine.
  StudyConfig sc;
  sc.scale = cfg_.scale;
  sc.threads = cfg_.threads;
  sc.freq_sweep = false;  // the Fig. 6 sweep is a per-real-machine study
  sc.trace_refs = cfg_.trace_refs;
  sc.kernels = cfg_.kernels;
  sc.seed = cfg_.seed;
  sc.jobs = cfg_.jobs;
  sc.kernel_jobs = cfg_.kernel_jobs;
  sc.canonical_timing = true;  // explore output is analytic; keep it stable
  sc.machines.push_back(base);
  for (const auto& v : variants) sc.machines.push_back(v.cpu);

  StudyEngine engine(sc, factory_);
  auto results = engine.run();
  stats_ = engine.stats();

  ExploreResults out;
  out.base = base.short_name;
  out.baseline =
      score_variant(results, arch::MachineVariant{"", std::move(base)}, 0);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    out.variants.push_back(
        score_variant(results, std::move(variants[i]), i + 1));
  }
  return out;
}

ExploreConfig golden_explore_config() {
  ExploreConfig cfg;
  cfg.base = "KNL";
  cfg.variants = {};  // the built-in grid — gated along with the results
  cfg.kernels = golden_config().kernels;
  cfg.scale = 0.2;
  cfg.threads = 1;  // host-independent op counts, as for the study golden
  cfg.trace_refs = 120'000;
  cfg.seed = 42;
  cfg.jobs = 1;
  cfg.kernel_jobs = 1;
  return cfg;
}

}  // namespace fpr::study
