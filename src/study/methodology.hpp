// The paper's Sec. III-A five-step measurement methodology, reproduced
// as library routines: parallelism search (step 2: best #processes /
// #threads), repeated performance runs taking the fastest of N
// (step 3), and the stability check that the fastest half of runs spread
// only a few percent (the paper reports 3.9% on average).
#pragma once

#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "kernels/kernel.hpp"

namespace fpr::study {

struct ParallelismChoice {
  unsigned threads = 0;      ///< best worker count found
  double best_seconds = 0.0; ///< fastest kernel time at that count
  std::vector<std::pair<unsigned, double>> tried;  ///< (threads, seconds)
};

/// Candidate worker counts for the step-2 search on a host with
/// `hw_threads` hardware threads: {1, hw/4, hw/2, hw, 2*hw} padded with
/// {1, 2, 4}, sorted and deduplicated. The padding guarantees at least
/// three distinct candidates even when hw_threads <= 2 would collapse
/// the ladder (the search must always compare under- and
/// over-subscription against the serial baseline).
std::vector<unsigned> parallelism_ladder(unsigned hw_threads);

/// Step 2: try several worker counts (including over-/under-subscription
/// relative to the host) and pick the best time-to-solution. `repeats`
/// runs per configuration, keeping the fastest (3 in the paper).
ParallelismChoice find_best_parallelism(const kernels::ProxyKernel& k,
                                        double scale = 0.3,
                                        int repeats = 2);

struct PerformanceRun {
  SampleSummary timing;   ///< over `repeats` runs; `best` is reported
  model::WorkloadMeasurement best_meas;
};

/// Step 3: execute the performance run — `repeats` trials (10 in the
/// paper), report the fastest and the spread statistics.
PerformanceRun performance_run(const kernels::ProxyKernel& k,
                               const kernels::RunConfig& cfg,
                               int repeats = 5);

}  // namespace fpr::study
