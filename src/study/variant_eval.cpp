#include "study/variant_eval.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/units.hpp"
#include "study/domain_util.hpp"

namespace fpr::study {

double geomean_ratio(const std::vector<double>& ratios) {
  if (ratios.empty()) return 1.0;
  double log_sum = 0.0;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    const double x = ratios[i];
    if (!std::isfinite(x) || x <= 0.0) {
      throw std::domain_error(
          "geomean_ratio: ratio #" + std::to_string(i) + " is " +
          std::to_string(x) +
          " — every per-kernel ratio must be finite and > 0 (a zero or "
          "non-finite ratio means a model produced a degenerate time or "
          "energy value upstream)");
    }
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(ratios.size()));
}

VariantEvaluator::VariantEvaluator(arch::CpuSpec base, const Config& cfg,
                                   StudyEngine::KernelFactory factory)
    : base_(std::move(base)),
      trace_refs_(cfg.trace_refs),
      sim_cache_(std::make_shared<memsim::SimCache>()) {
  // Measurement phase: one study over the base machine alone. Each
  // kernel runs instrumented exactly once; the base's hierarchy replays
  // land in sim_cache_, which outlives the engine so later geometry-
  // changing variants extend the same memo instead of restarting it.
  StudyConfig sc;
  sc.scale = cfg.scale;
  sc.threads = cfg.threads;
  sc.freq_sweep = false;  // the Fig. 6 sweep is a per-real-machine study
  sc.trace_refs = cfg.trace_refs;
  sc.kernels = cfg.kernels;
  sc.seed = cfg.seed;
  sc.jobs = cfg.jobs;
  sc.kernel_jobs = cfg.kernel_jobs;
  sc.canonical_timing = true;  // scores are analytic; keep them stable
  sc.machines.push_back(base_);
  sc.sim_cache = sim_cache_;

  StudyEngine engine(sc, std::move(factory));
  auto results = engine.run();  // rethrows kernel-verification failures
  measurement_stats_ = engine.stats();

  auto base_profiles = std::make_shared<ProfileSet>();
  base_profiles->reserve(results.kernels.size());
  kernels_.reserve(results.kernels.size());
  for (auto& k : results.kernels) {
    base_profiles->push_back(k.machines[0].mem);
    kernels_.push_back(
        {std::move(k.info), std::move(k.meas), k.machines[0].perf});
  }
  // Prime the model-level memo: every variant that leaves the memory
  // system untouched (TDP, FPU respins) shares the base digest and pays
  // zero simulation work.
  memo_.emplace(arch::memory_model_digest(base_), std::move(base_profiles));
}

std::shared_ptr<const VariantEvaluator::ProfileSet>
VariantEvaluator::profiles_for(const arch::CpuSpec& cpu) const {
  const std::string digest = arch::memory_model_digest(cpu);
  {
    std::lock_guard lock(mu_);
    if (const auto it = memo_.find(digest); it != memo_.end()) {
      ++stats_.memo_hits;
      return it->second;
    }
    ++stats_.memo_misses;
  }
  // Compute outside the lock: a distinct geometry costs one replay set,
  // and concurrent callers racing on the same new digest just compute
  // identical profiles (deterministic simulation) — first insert wins.
  auto set = std::make_shared<ProfileSet>();
  set->reserve(kernels_.size());
  for (const auto& kb : kernels_) {
    set->push_back(model::profile_memory(cpu, kb.meas, trace_refs_,
                                         model::kDefaultScaleShift,
                                         sim_cache_.get()));
  }
  std::lock_guard lock(mu_);
  return memo_.emplace(digest, std::move(set)).first->second;
}

VariantScore VariantEvaluator::evaluate(
    const arch::MachineVariant& variant) const {
  VariantScore score;
  score.variant = variant;
  const arch::CpuSpec& cpu = score.variant.cpu;
  const auto profiles = profiles_for(cpu);

  std::vector<double> time_ratios, energy_ratios, fp64_pcts;
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    const KernelBase& kb = kernels_[i];
    KernelProjection p;
    p.abbrev = kb.info.abbrev;
    p.mem = (*profiles)[i];
    p.perf = model::evaluate_at_turbo(cpu, kb.meas, p.mem);
    p.time_ratio = p.perf.seconds / kb.perf.seconds;
    p.energy_ratio = (p.perf.power_w * p.perf.seconds) /
                     (kb.perf.power_w * kb.perf.seconds);
    const auto ops = kb.meas.ops_on(cpu.has_mcdram());
    if (ops.fp64 > 0) {
      const double achieved_gflops =
          static_cast<double>(ops.fp64) / p.perf.seconds / kGiga;
      p.fp64_pct_peak =
          100.0 * achieved_gflops / cpu.peak_gflops(arch::Precision::fp64);
      fp64_pcts.push_back(p.fp64_pct_peak);
    }
    time_ratios.push_back(p.time_ratio);
    energy_ratios.push_back(p.energy_ratio);
    score.kernels.push_back(std::move(p));
  }

  score.geomean_time_ratio = geomean_ratio(time_ratios);
  score.geomean_energy_ratio = geomean_ratio(energy_ratios);
  if (!fp64_pcts.empty()) {
    double sum = 0.0;
    for (const double v : fp64_pcts) sum += v;
    score.mean_fp64_pct_peak = sum / static_cast<double>(fp64_pcts.size());
  }

  // Mean Fig. 7 site projection over the surveyed sites, from the same
  // per-kernel points the full-study overload would build.
  std::vector<ProjectionPoint> points;
  points.reserve(kernels_.size());
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    points.push_back({kernels_[i].info.domain,
                      kernels_[i].meas.ops.fp_total() != 0,
                      score.kernels[i].perf.pct_of_peak});
  }
  const auto& sites = site_utilization();
  double site_sum = 0.0;
  for (const auto& site : sites) {
    site_sum += project_site_pct_peak(site, points);
  }
  score.site_pct_peak =
      sites.empty() ? 0.0 : site_sum / static_cast<double>(sites.size());

  {
    std::lock_guard lock(mu_);
    ++stats_.evaluations;
  }
  return score;
}

EvaluatorStats VariantEvaluator::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace fpr::study
