// The study driver: executes the paper's measurement pipeline end to end.
// For each proxy kernel: run instrumented (the SDE/PCM step), simulate
// its memory behaviour per machine (the PCM step), evaluate the machine
// model at the performance operating point and across the frequency
// sweep (the Sec. III-A steps 3's performance/profiling/frequency runs).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/machines.hpp"
#include "kernels/kernel.hpp"
#include "memsim/sim_cache.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"

namespace fpr::study {

struct MachineResult {
  arch::CpuSpec cpu;
  model::MemoryProfile mem;
  model::EvalResult perf;  ///< at max frequency + turbo (performance run)
  std::vector<std::pair<arch::FreqState, model::EvalResult>> freq_sweep;
};

struct KernelResult {
  kernels::KernelInfo info;
  model::WorkloadMeasurement meas;
  std::vector<MachineResult> machines;  ///< KNL, KNM, BDW (paper order)

  [[nodiscard]] const MachineResult& on(std::string_view short_name) const;
};

struct StudyConfig {
  double scale = 1.0;       ///< kernel input scale (tests use less)
  unsigned threads = 0;     ///< host worker threads (0 = all)
  bool freq_sweep = true;   ///< run the Fig. 6 frequency evaluation
  std::uint64_t trace_refs = model::kDefaultTraceRefs;  ///< trace length
  /// Subset of kernel abbreviations to run (empty = all).
  std::vector<std::string> kernels;
  /// PRNG seed for the kernels' synthetic inputs (fixed => repeatable).
  std::uint64_t seed = 42;
  /// Engine workers for the per-machine (memsim + model + freq sweep)
  /// stages (0 = hardware concurrency). Never changes the results, only
  /// the wall time.
  unsigned jobs = 1;
  /// Concurrent instrumented kernel runs (the paper's per-workload
  /// SDE/PCM stage; 0 = hardware concurrency). Each run executes in its
  /// own ExecutionContext — a private worker pool of `threads` workers
  /// plus a run-local counter sink — so concurrent runs cannot
  /// cross-contaminate assay deltas, and any value produces the same
  /// results byte for byte.
  unsigned kernel_jobs = 1;
  /// Zero out the wall-clock field (host_seconds) of every measurement.
  /// This makes serialized results byte-stable across runs and jobs
  /// counts — the mode `fpr study` and the golden snapshot use.
  bool canonical_timing = false;
  /// Machines to evaluate each kernel on (empty = the paper's three,
  /// arch::all_machines()). The explore engine sweeps derived variants
  /// through here; short names must be unique since KernelResult::on
  /// looks results up by them.
  std::vector<arch::CpuSpec> machines;
  /// Replay memo shared with the caller (null = the engine creates a
  /// private one per run). The incremental evaluator passes the cache it
  /// keeps across evaluate() calls, so variant scoring after the
  /// measurement phase reuses the hierarchy replays the study already
  /// paid for. Memoized entries equal fresh simulations byte for byte,
  /// so sharing never changes results.
  std::shared_ptr<memsim::SimCache> sim_cache;
};

struct StudyResults {
  std::vector<KernelResult> kernels;

  [[nodiscard]] const KernelResult* find(std::string_view abbrev) const;
};

/// Run the full pipeline (thin wrapper over StudyEngine, which see).
/// Kernels that fail verification abort the study with the kernel's
/// exception (the paper's step 4: anomalies restart).
StudyResults run_study(const StudyConfig& cfg = {});

}  // namespace fpr::study
