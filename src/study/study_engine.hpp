// StudyEngine: the study pipeline decomposed into schedulable jobs.
//
// The evaluation grid is one instrumented kernel run per kernel (the
// paper's SDE/PCM step) feeding three per-machine stages (memory
// simulation + model evaluation + frequency sweep) per kernel. Both
// axes fan out:
//
//  - kernel runs execute on up to cfg.kernel_jobs producer threads.
//    Every run gets its own ExecutionContext (a private worker pool of
//    cfg.threads workers plus a run-local counter sink), so concurrent
//    runs share no mutable state — the de-globalization that lifted the
//    old "kernel runs are inherently serial" constraint, which existed
//    only because kernels used to count into process-wide thread-local
//    tallies on a single global pool;
//  - each finished measurement streams its (kernel, machine) stages —
//    pure functions of (CpuSpec, measurement) — to the workers of an
//    engine-owned pool of cfg.jobs threads.
//
// Guarantees:
//  - each kernel's instrumented run executes exactly once, shared by all
//    machine stages (stats().kernel_runs counts them);
//  - results are slot-indexed, so ordering is deterministic — identical
//    across any (kernel_jobs, jobs) combination, and byte-identical once
//    serialized when cfg.canonical_timing strips the only wall-clock
//    field (op counts are analytic and chunking is static, so the
//    parallel engine is a pure reordering of the serial pipeline);
//  - a kernel-verification exception aborts fail-fast: queued machine
//    jobs are dropped, no further kernel runs start, and run() rethrows
//    the original exception.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "kernels/kernel.hpp"
#include "study/study.hpp"

namespace fpr::study {

/// Execution counters for the run-count assertions in tests and for the
/// throughput bench's sanity output.
struct EngineStats {
  std::uint64_t kernel_runs = 0;    ///< instrumented kernel executions
  std::uint64_t machine_evals = 0;  ///< completed (kernel, machine) stages
  std::uint64_t sim_hits = 0;       ///< memoized hierarchy replays reused
  std::uint64_t sim_misses = 0;     ///< hierarchy replays actually simulated
};

class StudyEngine {
 public:
  /// Source of kernels to run (tests inject counting/failing fakes).
  using KernelFactory =
      std::function<std::vector<std::unique_ptr<kernels::ProxyKernel>>()>;

  explicit StudyEngine(StudyConfig cfg, KernelFactory factory = nullptr);

  /// Execute the pipeline. Call at most once per engine.
  [[nodiscard]] StudyResults run();

  /// Valid after run() returns (or throws).
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

 private:
  StudyConfig cfg_;
  KernelFactory factory_;
  EngineStats stats_;
};

/// The deterministic configuration behind tests/golden/study_snapshot.json:
/// a six-kernel subset covering every workload class at reduced scale,
/// single-threaded kernel runs (host-independent op counts), canonical
/// timing. Regenerate the snapshot with
/// `fpr study --golden --out tests/golden/study_snapshot.json`.
[[nodiscard]] StudyConfig golden_config();

}  // namespace fpr::study
