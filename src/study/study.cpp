#include "study/study.hpp"

#include <stdexcept>

#include "study/study_engine.hpp"

namespace fpr::study {

const MachineResult& KernelResult::on(std::string_view short_name) const {
  for (const auto& m : machines) {
    if (m.cpu.short_name == short_name) return m;
  }
  throw std::invalid_argument("no machine result for " +
                              std::string(short_name));
}

const KernelResult* StudyResults::find(std::string_view abbrev) const {
  for (const auto& k : kernels) {
    if (k.info.abbrev == abbrev) return &k;
  }
  return nullptr;
}

StudyResults run_study(const StudyConfig& cfg) {
  // The engine hoists each kernel's single instrumented run above the
  // per-machine stages, so re-profiling a measurement for KNL/KNM/BDW
  // can never re-execute (or re-seed) the kernel itself.
  return StudyEngine(cfg).run();
}

}  // namespace fpr::study
