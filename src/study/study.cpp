#include "study/study.hpp"

#include <algorithm>
#include <stdexcept>

namespace fpr::study {

const MachineResult& KernelResult::on(std::string_view short_name) const {
  for (const auto& m : machines) {
    if (m.cpu.short_name == short_name) return m;
  }
  throw std::invalid_argument("no machine result for " +
                              std::string(short_name));
}

const KernelResult* StudyResults::find(std::string_view abbrev) const {
  for (const auto& k : kernels) {
    if (k.info.abbrev == abbrev) return &k;
  }
  return nullptr;
}

StudyResults run_study(const StudyConfig& cfg) {
  StudyResults results;
  const auto machines = arch::all_machines();

  for (auto& kernel : kernels::make_all()) {
    const auto& info = kernel->info();
    if (!cfg.kernels.empty() &&
        std::find(cfg.kernels.begin(), cfg.kernels.end(), info.abbrev) ==
            cfg.kernels.end()) {
      continue;
    }

    kernels::RunConfig rc;
    rc.scale = cfg.scale;
    rc.threads = cfg.threads;
    KernelResult kr;
    kr.info = info;
    kr.meas = kernel->run(rc);  // throws if verification fails (step 4)

    for (const auto& cpu : machines) {
      MachineResult mr;
      mr.cpu = cpu;
      mr.mem = model::profile_memory(cpu, kr.meas, cfg.trace_refs);
      mr.perf = model::evaluate_at_turbo(cpu, kr.meas, mr.mem);
      if (cfg.freq_sweep) {
        for (const auto& fs : cpu.frequency_sweep()) {
          mr.freq_sweep.emplace_back(
              fs, model::evaluate(cpu, fs.ghz, kr.meas, mr.mem));
        }
      }
      kr.machines.push_back(std::move(mr));
    }
    results.kernels.push_back(std::move(kr));
  }
  return results;
}

}  // namespace fpr::study
