// ExploreEngine: the paper's closing what-if (Sec. VII / Fig. 7) made
// computable. The three Table I machines answer "how do these workloads
// run on the silicon Intel shipped?"; the explorer answers "how would
// they run on the silicon a site could have bought instead?" — a grid of
// derived machine variants (arch::derive_variant: fewer FP64 pipes, more
// bandwidth, more MCDRAM, more cores, a tighter TDP) swept over the
// whole proxy suite.
//
// Execution reuses StudyEngine wholesale: each kernel runs instrumented
// exactly once (cfg.kernel_jobs producers), and every (kernel, machine)
// stage — memory simulation + model evaluation — fans out over cfg.jobs
// workers, with the machine list being [base, variants...] instead of
// the Table I trio. The engine-wide memsim::SimCache is geometry-keyed,
// so every variant that leaves the cache hierarchy untouched (bandwidth,
// TDP, FPU respins) reuses the base machine's hierarchy replays and
// costs only model arithmetic. Results are slot-ordered and
// byte-identical across any (jobs, kernel_jobs), as for fpr study.
#pragma once

#include <string>
#include <vector>

#include "arch/variant.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"
#include "study/study_engine.hpp"

namespace fpr::study {

/// One kernel evaluated on one variant, plus its deltas vs the base
/// machine (ratios < 1 mean the variant is better).
struct KernelProjection {
  std::string abbrev;
  model::MemoryProfile mem;
  model::EvalResult perf;
  double time_ratio = 1.0;     ///< seconds / base seconds
  double energy_ratio = 1.0;   ///< (power * seconds) / base energy
  double fp64_pct_peak = 0.0;  ///< achieved FP64 as % of the variant's peak
};

/// One variant's full scorecard over the kernel selection.
struct VariantScore {
  arch::MachineVariant variant;  ///< spec "" = the base machine itself
  std::vector<KernelProjection> kernels;
  double geomean_time_ratio = 1.0;    ///< time-to-solution vs base
  double geomean_energy_ratio = 1.0;  ///< energy-to-solution vs base
  double mean_fp64_pct_peak = 0.0;    ///< over kernels with FP64 work
  double site_pct_peak = 0.0;  ///< Fig. 7 projection, averaged over sites

  [[nodiscard]] const std::string& name() const {
    return variant.cpu.short_name;
  }
};

struct ExploreResults {
  std::string base;              ///< base machine short name
  VariantScore baseline;         ///< the base itself (ratios == 1)
  std::vector<VariantScore> variants;

  [[nodiscard]] const VariantScore* find(std::string_view name) const;
};

struct ExploreConfig {
  /// Base machine short name (a Table I machine: KNL, KNM, or BDW).
  std::string base = "KNL";
  /// Variant specs (arch::derive_variant grammar); empty = the built-in
  /// grid for the base (arch::builtin_variant_specs).
  std::vector<std::string> variants;
  /// Kernel selection / run parameters, as for StudyConfig.
  std::vector<std::string> kernels;
  double scale = 0.3;
  unsigned threads = 0;
  std::uint64_t trace_refs = model::kDefaultTraceRefs;
  std::uint64_t seed = 42;
  unsigned jobs = 1;
  unsigned kernel_jobs = 1;
};

class ExploreEngine {
 public:
  explicit ExploreEngine(ExploreConfig cfg,
                         StudyEngine::KernelFactory factory = nullptr);

  /// Run the sweep. Call at most once per engine. Throws
  /// std::invalid_argument for an unknown base machine, a malformed or
  /// inconsistent variant spec, or duplicate variant specs.
  [[nodiscard]] ExploreResults run();

  /// Valid after run() returns (or throws).
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

 private:
  ExploreConfig cfg_;
  StudyEngine::KernelFactory factory_;
  EngineStats stats_;
};

/// The deterministic configuration behind
/// tests/golden/explore_snapshot.json: the study golden's six kernels at
/// its scale/seed/trace length, base KNL, the full built-in variant grid.
/// Regenerate the snapshot with
/// `fpr explore --golden --out tests/golden/explore_snapshot.json`.
[[nodiscard]] ExploreConfig golden_explore_config();

}  // namespace fpr::study
