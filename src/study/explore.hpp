// ExploreEngine: the paper's closing what-if (Sec. VII / Fig. 7) made
// computable. The three Table I machines answer "how do these workloads
// run on the silicon Intel shipped?"; the explorer answers "how would
// they run on the silicon a site could have bought instead?" — a grid of
// derived machine variants (arch::derive_variant: fewer FP64 pipes, more
// bandwidth, more MCDRAM, more cores, a tighter TDP) swept over the
// whole proxy suite.
//
// Execution is the two-phase incremental pipeline: one
// study::VariantEvaluator measurement pass over the base machine (each
// kernel runs instrumented exactly once; cfg.kernel_jobs producers,
// cfg.jobs machine-stage workers), then one evaluate() per variant —
// model arithmetic against the cached measurements, fanned across
// cfg.jobs workers with slot-ordered results. Variants are deduplicated
// by canonical resolved machine (arch::canonical_cpu_digest), so
// order-equivalent compositions ("a+b" vs "b+a") and factor respellings
// are rejected as loudly as raw duplicates. Results are byte-identical
// across any (jobs, kernel_jobs), as for fpr study.
#pragma once

#include <string>
#include <vector>

#include "arch/variant.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"
#include "study/study_engine.hpp"
#include "study/variant_eval.hpp"

namespace fpr::study {

struct ExploreResults {
  std::string base;              ///< base machine short name
  VariantScore baseline;         ///< the base itself (ratios == 1)
  std::vector<VariantScore> variants;

  [[nodiscard]] const VariantScore* find(std::string_view name) const;
};

struct ExploreConfig {
  /// Base machine short name (a Table I machine: KNL, KNM, or BDW).
  std::string base = "KNL";
  /// Variant specs (arch::derive_variant grammar); empty = the built-in
  /// grid for the base (arch::builtin_variant_specs).
  std::vector<std::string> variants;
  /// Kernel selection / run parameters, as for StudyConfig.
  std::vector<std::string> kernels;
  double scale = 0.3;
  unsigned threads = 0;
  std::uint64_t trace_refs = model::kDefaultTraceRefs;
  std::uint64_t seed = 42;
  unsigned jobs = 1;
  unsigned kernel_jobs = 1;
};

class ExploreEngine {
 public:
  explicit ExploreEngine(ExploreConfig cfg,
                         StudyEngine::KernelFactory factory = nullptr);

  /// Run the sweep. Call at most once per engine. Throws
  /// std::invalid_argument for an unknown base machine, a malformed or
  /// inconsistent variant spec, or variant specs that duplicate each
  /// other — textually or canonically (two spellings of one machine).
  [[nodiscard]] ExploreResults run();

  /// Valid after run() returns (or throws): measurement-phase counters
  /// (kernel_runs, the base machine_evals) with the hierarchy-replay
  /// hit/miss totals across measurement *and* variant scoring, plus one
  /// machine_eval per scored (kernel, variant) pair — the same grid the
  /// monolithic engine counted.
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

  /// Scoring-side counters (memo hits/misses, evaluate() calls).
  [[nodiscard]] const EvaluatorStats& evaluator_stats() const {
    return evaluator_stats_;
  }

 private:
  ExploreConfig cfg_;
  StudyEngine::KernelFactory factory_;
  EngineStats stats_;
  EvaluatorStats evaluator_stats_;
};

/// The deterministic configuration behind
/// tests/golden/explore_snapshot.json: the study golden's six kernels at
/// its scale/seed/trace length, base KNL, the full built-in variant grid.
/// Regenerate the snapshot with
/// `fpr explore --golden --out tests/golden/explore_snapshot.json`.
[[nodiscard]] ExploreConfig golden_explore_config();

}  // namespace fpr::study
