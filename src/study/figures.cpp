#include "study/figures.hpp"

#include <algorithm>
#include <cmath>

#include "arch/machines.hpp"
#include "common/units.hpp"
#include "model/roofline.hpp"
#include "study/domain_util.hpp"

namespace fpr::study {

namespace {

// Fig. 2 filters (paper caption): negligible-FP proxies and MiniAMR.
bool fp_significant(const KernelResult& k) {
  return k.info.abbrev != "MxIO" && k.info.abbrev != "MTri" &&
         k.info.abbrev != "NGSA" && k.info.abbrev != "MAMR";
}

bool is_reference_stream(const KernelResult& k) {
  return k.info.abbrev == "BABL2" || k.info.abbrev == "BABL14";
}

}  // namespace

TextTable table1_hardware() {
  TextTable t({"Feature", "KNL", "KNM", "Broadwell-EP"});
  const auto knl = arch::knl();
  const auto knm = arch::knm();
  const auto bdw = arch::bdw();
  auto row3 = [&](const std::string& name, auto get) {
    t.add_row({name, get(knl), get(knm), get(bdw)});
  };
  row3("CPU Model", [](const arch::CpuSpec& c) { return c.model; });
  row3("#{Cores} (HT)", [](const arch::CpuSpec& c) {
    return std::to_string(c.cores) + " (" + std::to_string(c.smt) + "x)";
  });
  row3("Base Frequency", [](const arch::CpuSpec& c) {
    return fmt_double(c.base_ghz, 1) + " GHz";
  });
  row3("Max Turbo Freq.", [](const arch::CpuSpec& c) {
    return fmt_double(c.turbo_ghz, 1) + " GHz";
  });
  row3("TDP", [](const arch::CpuSpec& c) {
    return fmt_double(c.tdp_w, 0) + " W";
  });
  row3("DRAM Size", [](const arch::CpuSpec& c) {
    return fmt_double(c.dram_gib, 0) + " GiB";
  });
  row3("-> Triad BW", [](const arch::CpuSpec& c) {
    return fmt_double(c.dram_bw_gbs, 0) + " GB/s";
  });
  row3("MCDRAM Size", [](const arch::CpuSpec& c) {
    return c.has_mcdram() ? fmt_double(c.mcdram_gib, 0) + " GiB"
                          : std::string("N/A");
  });
  row3("-> Triad BW", [](const arch::CpuSpec& c) {
    return c.has_mcdram() ? fmt_double(c.mcdram_bw_gbs, 0) + " GB/s"
                          : std::string("N/A");
  });
  row3("MCDRAM Mode", [](const arch::CpuSpec& c) {
    return c.has_mcdram() ? std::string("Cache") : std::string("N/A");
  });
  row3("LLC Size", [](const arch::CpuSpec& c) {
    return fmt_double(c.llc_mib, 0) + " MiB";
  });
  row3("Inst. Set Extension",
       [](const arch::CpuSpec& c) { return c.isa; });
  row3("FP32 Peak Perf.", [](const arch::CpuSpec& c) {
    return fmt_double(c.peak_gflops(arch::Precision::fp32), 0) + " Gflop/s";
  });
  row3("FP64 Peak Perf.", [](const arch::CpuSpec& c) {
    return fmt_double(c.peak_gflops(arch::Precision::fp64), 0) + " Gflop/s";
  });
  return t;
}

TextTable table2_categorization() {
  TextTable t({"Suite", "App", "Scientific/Engineering Domain",
               "Compute Pattern", "Language"});
  for (const auto& k : kernels::make_all()) {
    const auto& i = k->info();
    if (i.suite == kernels::Suite::reference) continue;  // omitted in paper
    t.add_row({std::string(to_string(i.suite)), i.name,
               std::string(to_string(i.domain)),
               std::string(to_string(i.pattern)), i.language});
  }
  return t;
}

TextTable table3_metrics() {
  TextTable t({"Raw Metric", "Paper Method/Tool", "This Reproduction"});
  t.add_row({"Runtime [s]", "MPI_Wtime()", "assay regions (WallTimer)"});
  t.add_row({"#{FP / integer operations}", "Intel SDE",
             "counters:: instrumented execution"});
  t.add_row({"#{Branch operations}", "Intel SDE", "counters::add_branch"});
  t.add_row({"Memory throughput [B/s]", "PCM (pcm-memory.x)",
             "memsim hierarchy simulation + model"});
  t.add_row({"#{L2/LLC cache hits/misses}", "PCM (pcm.x)",
             "memsim set-associative simulation"});
  t.add_row({"Consumed Power [Watt]", "PCM (pcm-power.x)",
             "model power estimate (TDP-scaled)"});
  t.add_row({"SIMD instructions per cycle", "perf + VTune",
             "KernelTraits::vec_eff calibration"});
  t.add_row({"Memory/Back-end boundedness", "perf + VTune",
             "model boundedness classifier"});
  return t;
}

TextTable fig1_opmix(const StudyResults& r) {
  TextTable t({"App", "Machine", "FP64 %", "FP32 %", "INT %"});
  for (const auto& k : r.kernels) {
    if (is_reference_stream(k)) continue;
    for (const char* m : {"BDW", "KNL", "KNM"}) {
      const bool is_phi = std::string(m) != "BDW";
      const auto ops = k.meas.ops_on(is_phi);
      t.row()
          .cell(k.info.abbrev)
          .cell(m)
          .num(ops.fp64_share() * 100.0, 1)
          .num(ops.fp32_share() * 100.0, 1)
          .num(ops.int_share() * 100.0, 1)
          .done();
    }
  }
  return t;
}

TextTable fig2_relative_flops(const StudyResults& r) {
  TextTable t({"App", "KNLrel", "KNMrel", "BDWrel"});
  for (const auto& k : r.kernels) {
    if (!fp_significant(k) || is_reference_stream(k)) continue;
    const double bdw = k.on("BDW").perf.gflops;
    if (bdw <= 0.0) continue;
    t.row()
        .cell(k.info.abbrev)
        .num(k.on("KNL").perf.gflops / bdw, 2)
        .num(k.on("KNM").perf.gflops / bdw, 2)
        .num(1.0, 2)
        .done();
  }
  return t;
}

TextTable fig2_pct_of_peak(const StudyResults& r) {
  TextTable t({"App", "KNLabs %", "KNMabs %", "BDWabs %"});
  for (const auto& k : r.kernels) {
    if (!fp_significant(k) || is_reference_stream(k)) continue;
    t.row()
        .cell(k.info.abbrev)
        .num(k.on("KNL").perf.pct_of_peak, 2)
        .num(k.on("KNM").perf.pct_of_peak, 2)
        .num(k.on("BDW").perf.pct_of_peak, 2)
        .done();
  }
  return t;
}

TextTable fig3_speedup(const StudyResults& r) {
  TextTable t({"App", "KNL", "KNM", "BDW"});
  for (const auto& k : r.kernels) {
    if (is_reference_stream(k)) continue;
    const double bdw = k.on("BDW").perf.seconds;
    t.row()
        .cell(k.info.abbrev)
        .num(bdw / k.on("KNL").perf.seconds, 2)
        .num(bdw / k.on("KNM").perf.seconds, 2)
        .num(1.0, 2)
        .done();
  }
  return t;
}

TextTable fig4_membw(const StudyResults& r) {
  TextTable t({"App", "KNL GB/s", "KNM GB/s", "BDW GB/s"});
  for (const auto& k : r.kernels) {
    t.row()
        .cell(k.info.abbrev)
        .num(k.on("KNL").perf.mem_throughput_gbs, 1)
        .num(k.on("KNM").perf.mem_throughput_gbs, 1)
        .num(k.on("BDW").perf.mem_throughput_gbs, 1)
        .done();
  }
  return t;
}

TextTable fig5_roofline(const StudyResults& r) {
  TextTable t({"App", "AI [flop/byte]", "Achieved Gflop/s",
               "Attainable Gflop/s", "Side"});
  const auto bdw = arch::bdw();
  for (const auto& k : r.kernels) {
    if (!fp_significant(k) || is_reference_stream(k)) continue;
    const auto& m = k.on("BDW");
    const auto pt = model::roofline_point(bdw, k.meas, m.mem, m.perf);
    t.row()
        .cell(k.info.abbrev)
        .num(pt.arithmetic_intensity, 3)
        .num(pt.achieved_gflops, 1)
        .num(pt.attainable_gflops, 1)
        .cell(pt.memory_side ? "memory" : "compute")
        .done();
  }
  return t;
}

TextTable fig6_freqscale(const StudyResults& r,
                         const std::string& machine_short_name) {
  // Columns: one per frequency state of that machine.
  std::vector<std::string> headers{"App"};
  const arch::CpuSpec cpu = [&] {
    for (const auto& c : arch::all_machines()) {
      if (c.short_name == machine_short_name) return c;
    }
    throw std::invalid_argument("unknown machine " + machine_short_name);
  }();
  for (const auto& fs : cpu.frequency_sweep()) {
    headers.push_back(fmt_double(fs.ghz, 1) + " GHz" +
                      (fs.turbo ? " +TB" : ""));
  }
  TextTable t(std::move(headers));
  for (const auto& k : r.kernels) {
    if (is_reference_stream(k)) continue;
    const auto& sweep = k.on(machine_short_name).freq_sweep;
    if (sweep.empty()) continue;
    auto row = t.row();
    row.cell(k.info.abbrev);
    const double slowest = sweep.front().second.seconds;
    for (const auto& [fs, ev] : sweep) {
      row.num(slowest / ev.seconds, 3);
    }
    row.done();
  }
  return t;
}

TextTable fig7_site_utilization(const StudyResults& r) {
  TextTable t({"Site", "geo", "chm", "phy", "qcd", "mat", "eng", "mcs",
               "bio", "oth", "Proj. %peak (BDW)", "Proj. %peak (KNL)"});
  for (const auto& site : site_utilization()) {
    const double pct_bdw = project_site_pct_peak(site, r, "BDW");
    const double pct = project_site_pct_peak(site, r, "KNL");
    t.row()
        .cell(site.site)
        .num(site.geo * 100, 0)
        .num(site.chm * 100, 0)
        .num(site.phy * 100, 0)
        .num(site.qcd * 100, 0)
        .num(site.mat * 100, 0)
        .num(site.eng * 100, 0)
        .num(site.mcs * 100, 0)
        .num(site.bio * 100, 0)
        .num(site.oth * 100, 0)
        .num(pct_bdw, 1)
        .num(pct, 1)
        .done();
  }
  return t;
}

TextTable table4_metrics(const StudyResults& r,
                         const std::string& machine_short_name) {
  TextTable t({"App", "t2sol [s]", "Gop (D)", "Gop (S)", "Gop (I)",
               "Power [W]", "L2h [%]", "LLh [%]", "MemBW [GB/s]", "Bound"});
  for (const auto& k : r.kernels) {
    if (is_reference_stream(k)) continue;
    const auto& m = k.on(machine_short_name);
    const bool is_phi = m.cpu.has_mcdram();
    const auto ops = k.meas.ops_on(is_phi);
    t.row()
        .cell(k.info.abbrev)
        .num(m.perf.seconds, 3)
        .num(static_cast<double>(ops.fp64) / kGiga, 1)
        .num(static_cast<double>(ops.fp32) / kGiga, 1)
        .num(static_cast<double>(ops.int_ops) / kGiga, 1)
        .num(m.perf.power_w, 1)
        .num(m.mem.l2_hit * 100.0, 0)
        .num(m.mem.llc_hit * 100.0, 0)
        .num(m.perf.mem_throughput_gbs, 1)
        .cell(std::string(model::to_string(m.perf.bound)))
        .done();
  }
  return t;
}

}  // namespace fpr::study
