// VariantEvaluator: the incremental half of the design-space machinery.
//
// The old explore pipeline paid one StudyEngine (kernel, machine) stage
// per variant — O(variants × kernels) memory simulations and a
// StudyResults that grew with the grid. The evaluator splits that into
// two phases:
//
//  1. a one-time *measurement phase*: every selected kernel runs
//     instrumented exactly once (a StudyEngine over the base machine
//     alone), and the base machine's hierarchy replays land in a
//     SimCache the evaluator keeps alive;
//  2. on-demand *scoring*: evaluate(variant) is model arithmetic only —
//     memory profiles come from a model-level memo keyed by
//     arch::memory_model_digest (so bandwidth/TDP/FPU respins reuse the
//     base profiles outright, and geometry-changing variants replay
//     through the shared SimCache once per distinct geometry), and the
//     compute-side model (model::evaluate_at_turbo) is recomputed per
//     call because it is cheap pure arithmetic.
//
// evaluate() is const and thread-safe: a search engine may score
// candidates from many workers concurrently. Scoring reproduces the
// monolithic pipeline's arithmetic exactly — same model calls, same
// inputs, same order — which is what lets the rewired ExploreEngine
// keep the golden explore snapshot byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/variant.hpp"
#include "memsim/sim_cache.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"
#include "study/study_engine.hpp"

namespace fpr::study {

/// One kernel evaluated on one variant, plus its deltas vs the base
/// machine (ratios < 1 mean the variant is better).
struct KernelProjection {
  std::string abbrev;
  model::MemoryProfile mem;
  model::EvalResult perf;
  double time_ratio = 1.0;     ///< seconds / base seconds
  double energy_ratio = 1.0;   ///< (power * seconds) / base energy
  double fp64_pct_peak = 0.0;  ///< achieved FP64 as % of the variant's peak
};

/// One variant's full scorecard over the kernel selection.
struct VariantScore {
  arch::MachineVariant variant;  ///< spec "" = the base machine itself
  std::vector<KernelProjection> kernels;
  double geomean_time_ratio = 1.0;    ///< time-to-solution vs base
  double geomean_energy_ratio = 1.0;  ///< energy-to-solution vs base
  double mean_fp64_pct_peak = 0.0;    ///< over kernels with FP64 work
  double site_pct_peak = 0.0;  ///< Fig. 7 projection, averaged over sites

  [[nodiscard]] const std::string& name() const {
    return variant.cpu.short_name;
  }
};

/// Geometric mean of per-kernel ratios. Every input must be finite and
/// > 0 — std::log(0) would otherwise poison the whole aggregate with
/// -inf silently; a zero or non-finite ratio means a model bug upstream,
/// so this throws std::domain_error naming the offending value instead.
double geomean_ratio(const std::vector<double>& ratios);

/// Scoring-side counters (the measurement phase reports EngineStats).
struct EvaluatorStats {
  std::uint64_t evaluations = 0;  ///< evaluate() calls completed
  std::uint64_t memo_hits = 0;    ///< profile sets served from the memo
  std::uint64_t memo_misses = 0;  ///< profile sets computed (once per
                                  ///< distinct memory-model digest)
};

class VariantEvaluator {
 public:
  struct Config {
    /// Kernel selection / run parameters, as for StudyConfig.
    std::vector<std::string> kernels;
    double scale = 0.3;
    unsigned threads = 0;
    std::uint64_t trace_refs = model::kDefaultTraceRefs;
    std::uint64_t seed = 42;
    unsigned jobs = 1;
    unsigned kernel_jobs = 1;
  };

  /// Runs the measurement phase (throws whatever the kernel runs throw).
  VariantEvaluator(arch::CpuSpec base, const Config& cfg,
                   StudyEngine::KernelFactory factory = nullptr);

  /// Score one variant against the measured base. `variant.cpu` must be
  /// derived from this evaluator's base machine (arch::derive_variant);
  /// the base itself is the empty spec. Thread-safe.
  [[nodiscard]] VariantScore evaluate(const arch::MachineVariant& variant) const;

  [[nodiscard]] const arch::CpuSpec& base() const { return base_; }
  [[nodiscard]] std::size_t kernel_count() const { return kernels_.size(); }

  /// Measurement-phase counters (kernel_runs == kernel_count()).
  [[nodiscard]] const EngineStats& measurement_stats() const {
    return measurement_stats_;
  }
  /// Scoring-side counters. Totals are deterministic for a fixed call
  /// sequence; hit/miss split may shift under concurrent evaluate()
  /// racing on a fresh digest (both compute, first insert wins) — never
  /// the scores.
  [[nodiscard]] EvaluatorStats stats() const;
  /// The shared hierarchy-replay cache's counters (measurement + scoring).
  [[nodiscard]] memsim::SimCache::Stats sim_stats() const {
    return sim_cache_->stats();
  }

 private:
  /// Everything evaluate() needs per kernel, captured once.
  struct KernelBase {
    kernels::KernelInfo info;
    model::WorkloadMeasurement meas;
    model::EvalResult perf;  ///< on the base machine
  };
  using ProfileSet = std::vector<model::MemoryProfile>;  // kernel order

  [[nodiscard]] std::shared_ptr<const ProfileSet> profiles_for(
      const arch::CpuSpec& cpu) const;

  arch::CpuSpec base_;
  std::uint64_t trace_refs_ = model::kDefaultTraceRefs;
  std::vector<KernelBase> kernels_;
  std::shared_ptr<memsim::SimCache> sim_cache_;
  EngineStats measurement_stats_;

  mutable std::mutex mu_;  // guards memo_ and stats_
  mutable std::unordered_map<std::string, std::shared_ptr<const ProfileSet>>
      memo_;
  mutable EvaluatorStats stats_;
};

}  // namespace fpr::study
