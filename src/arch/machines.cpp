#include "arch/machines.hpp"

namespace fpr::arch {

// Numbers are Table I of the paper; microarchitectural details (port
// counts, latencies, MLP) from the KNL/KNM Hot Chips disclosures cited
// there ([7], [8]) and standard Broadwell references. Latency and MLP
// values are model parameters, chosen so that the latency-bound proxies
// (HPCG, XSBench on Phi) reproduce the paper's qualitative behaviour.

CpuSpec knl() {
  CpuSpec c;
  c.name = "Knights Landing";
  c.short_name = "KNL";
  c.model = "Xeon Phi 7210F";
  c.cores = 64;
  c.smt = 4;
  c.sockets = 1;
  c.base_ghz = 1.3;
  c.turbo_ghz = 1.5;
  c.peak_ref_ghz = 1.3;  // 64 * 1.3 * 32 = 2662.4 Gflop/s FP64
  c.freq_states_ghz = {1.0, 1.1, 1.2, 1.3};
  c.tdp_w = 230.0;
  c.dram_gib = 96.0;
  c.dram_bw_gbs = 71.0;  // measured Triad (Table I)
  c.mcdram_gib = 16.0;
  c.mcdram_bw_gbs = 439.0;  // flat-mode Triad
  c.mcdram_hit_eff = 0.86;  // paper Sec. IV-C: BABL2 at 86% of flat mode
  c.mcdram_cache_mode = true;
  c.llc_mib = 32.0;  // aggregated L2 (1 MiB per 2-core tile)
  c.l1_kib = 32;
  c.l1_assoc = 8;
  c.l2_kib_per_core = 512;
  c.l2_assoc = 16;
  c.llc_assoc = 16;
  c.isa = "AVX-512";
  // Two 512-bit VPUs per core, both FP64- and FP32-capable.
  c.fp64_fpu = {.units = 2, .vector_bits = 512, .pump = 1};   // 32 /cyc
  c.fp32_fpu = {.units = 2, .vector_bits = 512, .pump = 1};   // 64 /cyc
  c.fpu_issue_eff = 0.70;  // 2-wide decode feeding 2 VPUs + loads
  c.int_ops_per_cycle = 32;  // 2 vector ALU ports x 16 lanes
  c.dram_latency_ns = 155.0;    // KNL DDR4 load-to-use, quadrant mode
  c.mcdram_latency_ns = 174.0;  // MCDRAM is high-bandwidth, NOT low-latency
  c.mlp = 10.0;                 // outstanding L2 misses per core (Silvermont-based)
  return c;
}

CpuSpec knm() {
  CpuSpec c;
  c.name = "Knights Mill";
  c.short_name = "KNM";
  c.model = "Xeon Phi 7295";
  c.cores = 72;
  c.smt = 4;
  c.sockets = 1;
  c.base_ghz = 1.5;
  c.turbo_ghz = 1.6;
  c.peak_ref_ghz = 1.5;  // 72 * 1.5 * 16 = 1728 Gflop/s FP64
  c.freq_states_ghz = {1.0, 1.1, 1.2, 1.3, 1.4, 1.5};
  c.tdp_w = 320.0;
  c.dram_gib = 96.0;
  c.dram_bw_gbs = 88.0;
  c.mcdram_gib = 16.0;
  c.mcdram_bw_gbs = 430.0;
  c.mcdram_hit_eff = 0.75;  // paper Sec. IV-C: BABL2 at 75% of flat mode
  c.mcdram_cache_mode = true;
  c.llc_mib = 36.0;
  c.l1_kib = 32;
  c.l1_assoc = 8;
  c.l2_kib_per_core = 512;
  c.l2_assoc = 16;
  c.llc_assoc = 16;
  c.isa = "AVX-512";
  // One 512-bit pipe retains FP64; the second pipe is replaced by two
  // double-pumped VNNI units: SP-capable, no DP support.
  c.fp64_fpu = {.units = 1, .vector_bits = 512, .pump = 1};  // 16 /cyc
  c.fp32_fpu = {.units = 2, .vector_bits = 512, .pump = 2};  // 128 /cyc
  c.fpu_issue_eff = 0.92;  // single DP pipe is easy to keep fed
  // Plain SP vector code cannot dual-pump the VNNI units and pays their
  // longer latency; only the MKL-DNN VNNI path reaches the 13.8 Tflop/s.
  c.fp32_generic_eff = 0.6;
  c.int_ops_per_cycle = 32;
  c.dram_latency_ns = 155.0;
  c.mcdram_latency_ns = 174.0;
  c.mlp = 10.0;
  return c;
}

CpuSpec bdw() {
  CpuSpec c;
  c.name = "Broadwell-EP";
  c.short_name = "BDW";
  c.model = "2x Xeon E5-2650v4";
  c.cores = 24;  // accumulated over both sockets, as in Table I
  c.smt = 2;
  c.sockets = 2;
  c.base_ghz = 2.2;
  c.turbo_ghz = 2.9;
  c.peak_ref_ghz = 1.8;  // AVX base: 24 * 1.8 * 16 = 691.2 Gflop/s FP64
  c.freq_states_ghz = {1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0, 2.1, 2.2};
  c.tdp_w = 210.0;
  c.dram_gib = 256.0;
  c.dram_bw_gbs = 122.0;
  c.mcdram_gib = 0.0;
  c.mcdram_bw_gbs = 0.0;
  c.mcdram_cache_mode = false;
  c.llc_mib = 60.0;  // 2 x 30 MiB L3
  c.l1_kib = 32;
  c.l1_assoc = 8;
  c.l2_kib_per_core = 256;
  c.l2_assoc = 8;
  c.llc_assoc = 20;
  c.isa = "AVX2";
  // Two 256-bit FMA ports per core.
  c.fp64_fpu = {.units = 2, .vector_bits = 256, .pump = 1};  // 16 /cyc
  c.fp32_fpu = {.units = 2, .vector_bits = 256, .pump = 1};  // 32 /cyc
  c.fpu_issue_eff = 0.95;  // 4-wide OoO core
  c.int_ops_per_cycle = 24;  // 3 vector ALU ports x 8 lanes
  c.dram_latency_ns = 90.0;  // big-core OoO hides more latency
  c.mcdram_latency_ns = 0.0;
  c.mlp = 10.0;
  return c;
}

std::vector<CpuSpec> all_machines() { return {knl(), knm(), bdw()}; }

CpuSpec with_fpu_of(const CpuSpec& base, const CpuSpec& fpu_donor) {
  CpuSpec c = base;
  c.fp64_fpu = fpu_donor.fp64_fpu;
  c.fp32_fpu = fpu_donor.fp32_fpu;
  c.name = base.name + " + " + fpu_donor.short_name + " FPU";
  c.short_name = base.short_name + "+" + fpu_donor.short_name + "fpu";
  return c;
}

}  // namespace fpr::arch
