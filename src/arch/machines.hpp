// The three evaluation machines of the paper (Table I), plus a builder
// for hypothetical FPU redistributions used by the ablation benches
// ("what if KNL had KNM's FPU?" — the question the paper answers
// empirically by having both chips).
#pragma once

#include <vector>

#include "arch/cpu_spec.hpp"

namespace fpr::arch {

/// Intel Xeon Phi 7210F (Knights Landing): 64 cores, 2x AVX-512 VPUs per
/// core (32 DP flop/cycle), 16 GiB MCDRAM in cache mode.
CpuSpec knl();

/// Intel Xeon Phi 7295 (Knights Mill): 72 cores, 1x AVX-512 DP pipe plus
/// dual double-pumped VNNI SP pipes (16 DP / 128 SP flop/cycle).
CpuSpec knm();

/// Dual-socket Xeon E5-2650v4 (Broadwell-EP): 2x12 cores, AVX2, peak
/// quoted at the 1.8 GHz AVX base frequency as in Table I.
CpuSpec bdw();

/// All three machines in paper order {KNL, KNM, BDW}.
std::vector<CpuSpec> all_machines();

/// `base` with its floating-point silicon swapped for `fpu_donor`'s FPU
/// configuration — the hypothetical-processor ablation. Name becomes
/// "<base>+<donor>fpu".
CpuSpec with_fpu_of(const CpuSpec& base, const CpuSpec& fpu_donor);

}  // namespace fpr::arch
