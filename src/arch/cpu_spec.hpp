// Machine descriptions. A CpuSpec carries everything the paper's Table I
// reports for the three evaluation nodes (KNL, KNM, dual-socket BDW) plus
// the microarchitectural parameters the execution model needs (FPU port
// configuration, integer throughput, memory latency, cache geometry,
// frequency states for the Fig. 6 throttling study).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fpr::arch {

enum class Precision { fp64, fp32 };

/// One class of SIMD floating-point execution resources in a core.
/// flops/cycle/core = units * lanes(precision) * 2 (FMA) * pump.
struct FpuConfig {
  int units = 0;        ///< number of vector pipes of this class
  int vector_bits = 0;  ///< register width serviced per pipe
  int pump = 1;         ///< >1 for double-pumped units (KNM VNNI)

  [[nodiscard]] constexpr int lanes(Precision p) const {
    return vector_bits / (p == Precision::fp64 ? 64 : 32);
  }
  [[nodiscard]] constexpr int flops_per_cycle(Precision p) const {
    return units * lanes(p) * 2 * pump;
  }
};

/// Core-frequency operating point used in the Fig. 6 throttling sweep.
struct FreqState {
  double ghz = 0.0;
  bool turbo = false;  ///< the paper's pessimistic "+TB = +100 MHz" point
};

struct CpuSpec {
  std::string name;        ///< "Knights Landing"
  std::string short_name;  ///< "KNL"
  std::string model;       ///< "7210F"

  int cores = 0;
  int smt = 1;             ///< hardware threads per core
  int sockets = 1;

  double base_ghz = 0.0;
  double turbo_ghz = 0.0;
  /// Frequency at which the Table I peak numbers hold (BDW quotes its
  /// AVX base frequency of 1.8 GHz; the Phis quote nominal base).
  double peak_ref_ghz = 0.0;
  /// Throttling states available below/at base (Fig. 6 x-axis).
  std::vector<double> freq_states_ghz;

  double tdp_w = 0.0;

  // Memory system (Table I; bandwidths are measured Triad numbers).
  double dram_gib = 0.0;
  double dram_bw_gbs = 0.0;
  double mcdram_gib = 0.0;     ///< 0 = no MCDRAM
  double mcdram_bw_gbs = 0.0;  ///< flat-mode Triad bandwidth
  /// Fraction of the flat-mode Triad bandwidth a cache-mode hit
  /// sustains (tag probes; calibrated to the paper's BabelStream 2 GiB
  /// points). 0 = let the bandwidth model fall back to its per-family
  /// defaults. Carried here — not keyed off the machine name — so
  /// derived variants (arch::derive_variant) inherit their base's
  /// efficiency.
  double mcdram_hit_eff = 0.0;
  bool mcdram_cache_mode = false;
  double llc_mib = 0.0;

  // Cache geometry for the memory simulator.
  int l1_kib = 32;
  int l1_assoc = 8;
  int l2_kib_per_core = 0;
  int l2_assoc = 16;
  int llc_assoc = 16;

  // Execution resources.
  std::string isa;  ///< "AVX-512" / "AVX2"
  FpuConfig fp64_fpu;
  FpuConfig fp32_fpu;
  /// Fraction of the nominal FPU peak the front-end can actually feed
  /// (KNL's 2-wide decode struggles to keep both VPUs busy alongside
  /// loads; big OoO cores and KNM's single DP pipe sustain close to 1.0).
  double fpu_issue_eff = 1.0;
  /// Efficiency of *generic* (non-VNNI) single-precision vector code on
  /// the FP32 pipes. KNM's VNNI units execute plain SP vectors, but at
  /// single pump and with longer latency than a classic VPU.
  double fp32_generic_eff = 1.0;
  int int_ops_per_cycle = 0;  ///< per-core vector-integer throughput

  // Latency model parameters (ns to memory, sustainable misses per core).
  double dram_latency_ns = 0.0;
  double mcdram_latency_ns = 0.0;
  double mlp = 0.0;  ///< memory-level parallelism per core

  /// Peak Gflop/s at frequency `ghz` across all cores.
  [[nodiscard]] double peak_gflops(Precision p, double ghz) const;

  /// Peak Gflop/s at the Table I reference frequency (the quoted number).
  [[nodiscard]] double peak_gflops(Precision p) const {
    return peak_gflops(p, peak_ref_ghz);
  }

  /// Peak integer Gop/s at frequency `ghz`.
  [[nodiscard]] double peak_giops(double ghz) const;

  [[nodiscard]] int total_hw_threads() const { return cores * smt; }

  /// True when the MCDRAM acts as a memory-side cache in front of DRAM.
  [[nodiscard]] bool has_mcdram() const { return mcdram_gib > 0.0; }

  /// All operating points for the frequency-scaling experiment:
  /// every throttled state plus base, plus the pessimistic turbo point.
  [[nodiscard]] std::vector<FreqState> frequency_sweep() const;

  /// Basic internal-consistency validation; throws std::invalid_argument.
  void validate() const;
};

}  // namespace fpr::arch
