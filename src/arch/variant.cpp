#include "arch/variant.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fpr::arch {

namespace {

[[noreturn]] void bad(const std::string& transform, const std::string& why) {
  throw std::invalid_argument("variant transform '" + transform + "': " + why);
}

double parse_factor(const std::string& transform, const std::string& text) {
  double f = 0.0;
  try {
    std::size_t pos = 0;
    f = std::stod(text, &pos);
    if (pos != text.size()) bad(transform, "trailing junk in factor");
  } catch (const std::invalid_argument&) {
    bad(transform, "malformed factor '" + text + "'");
  } catch (const std::out_of_range&) {
    bad(transform, "factor '" + text + "' out of range");
  }
  if (!std::isfinite(f) || f <= 0.0) {
    bad(transform, "factor must be finite and > 0");
  }
  return f;
}

int integer_factor(const std::string& transform, double f, int min) {
  const double r = std::round(f);
  if (std::abs(f - r) > 1e-9 || r < min) {
    bad(transform, "factor must be an integer >= " + std::to_string(min));
  }
  return static_cast<int>(r);
}

void require_mcdram(const CpuSpec& spec, const std::string& transform) {
  if (!spec.has_mcdram()) {
    bad(transform, spec.short_name + " has no MCDRAM");
  }
}

}  // namespace

const std::vector<TransformInfo>& transform_catalogue() {
  static const std::vector<TransformInfo> catalogue = {
      {"halve-fp64", false,
       "halve the FP64 pipes (pipe count, then vector width)"},
      {"drop-fp64-vec", false,
       "remove vector FP64 entirely; scalar (64-bit) FMA retained"},
      {"widen-fp32", true,
       "multiply the FP32/VNNI pipe count (integer factor, default 2)"},
      {"dram-bw", true, "scale the DDR Triad bandwidth (default 1.5)"},
      {"mcdram-bw", true,
       "scale the MCDRAM Triad bandwidth (Phi only, default 1.5)"},
      {"mcdram-cap", true, "scale the MCDRAM capacity (Phi only, default 2)"},
      {"cores", true, "scale the core count, rounded (default 1.25)"},
      {"tdp", true, "scale the TDP envelope (default 0.85)"},
  };
  return catalogue;
}

void apply_transform(CpuSpec& spec, const std::string& transform) {
  std::string name = transform;
  bool has_factor = false;
  double factor = 0.0;
  if (const auto eq = transform.find('='); eq != std::string::npos) {
    name = transform.substr(0, eq);
    factor = parse_factor(transform, transform.substr(eq + 1));
    has_factor = true;
  }

  if (name == "halve-fp64") {
    if (has_factor) bad(transform, "takes no factor");
    if (spec.fp64_fpu.units > 1) {
      spec.fp64_fpu.units /= 2;
    } else if (spec.fp64_fpu.vector_bits > 64) {
      spec.fp64_fpu.vector_bits /= 2;
    } else {
      bad(transform, "already down to scalar FP64");
    }
  } else if (name == "drop-fp64-vec") {
    if (has_factor) bad(transform, "takes no factor");
    // Chips that shed vector DP silicon keep scalar DP (the KNM story,
    // taken to its end): one 64-bit FMA pipe survives so the machine
    // still validates and FP64 code still runs — dog slow.
    spec.fp64_fpu = FpuConfig{.units = 1, .vector_bits = 64, .pump = 1};
  } else if (name == "widen-fp32") {
    const int k = integer_factor(transform, has_factor ? factor : 2.0, 2);
    spec.fp32_fpu.units *= k;
  } else if (name == "dram-bw") {
    spec.dram_bw_gbs *= has_factor ? factor : 1.5;
  } else if (name == "mcdram-bw") {
    require_mcdram(spec, transform);
    spec.mcdram_bw_gbs *= has_factor ? factor : 1.5;
  } else if (name == "mcdram-cap") {
    require_mcdram(spec, transform);
    spec.mcdram_gib *= has_factor ? factor : 2.0;
  } else if (name == "cores") {
    const double f = has_factor ? factor : 1.25;
    spec.cores = std::max(
        1, static_cast<int>(std::lround(static_cast<double>(spec.cores) * f)));
  } else if (name == "tdp") {
    spec.tdp_w *= has_factor ? factor : 0.85;
  } else {
    bad(transform, "unknown transform");
  }
}

MachineVariant derive_variant(const CpuSpec& base, const std::string& spec) {
  MachineVariant v;
  v.spec = spec;
  v.cpu = base;
  if (!spec.empty()) {
    std::size_t begin = 0;
    while (begin <= spec.size()) {
      const std::size_t end = std::min(spec.find('+', begin), spec.size());
      const std::string transform = spec.substr(begin, end - begin);
      if (transform.empty()) {
        throw std::invalid_argument("variant spec '" + spec +
                                    "': empty transform");
      }
      apply_transform(v.cpu, transform);
      begin = end + 1;
    }
    v.cpu.short_name = base.short_name + "+" + spec;
    v.cpu.name = base.name + " [" + spec + "]";
    v.cpu.validate();  // a derived machine must be internally consistent
  }
  return v;
}

std::vector<std::string> builtin_variant_specs(const CpuSpec& base) {
  std::vector<std::string> specs = {"halve-fp64", "drop-fp64-vec",
                                    "widen-fp32", "dram-bw=1.5",
                                    "cores=1.25", "tdp=0.85"};
  if (base.has_mcdram()) {
    specs.insert(specs.begin() + 4, {"mcdram-bw=1.5", "mcdram-cap=2"});
  }
  return specs;
}

namespace {

// Field encoding mirrors memsim::SimCache keys: %.17g doubles (shortest
// exact decimal for any double) and decimal integers, ';'-separated.
void append_f(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
  out += ';';
}

void append_i(std::string& out, long long v) {
  out += std::to_string(v);
  out += ';';
}

}  // namespace

std::string memory_model_digest(const CpuSpec& cpu) {
  std::string key = "mem|";
  append_i(key, cpu.cores);
  append_i(key, cpu.l1_kib);
  append_i(key, cpu.l1_assoc);
  append_i(key, cpu.l2_kib_per_core);
  append_i(key, cpu.l2_assoc);
  append_i(key, cpu.llc_assoc);
  append_f(key, cpu.llc_mib);
  append_f(key, cpu.dram_gib);
  append_f(key, cpu.dram_bw_gbs);
  append_f(key, cpu.mcdram_gib);
  append_f(key, cpu.mcdram_bw_gbs);
  append_f(key, cpu.mcdram_hit_eff);
  append_i(key, cpu.mcdram_cache_mode ? 1 : 0);
  append_f(key, cpu.dram_latency_ns);
  append_f(key, cpu.mcdram_latency_ns);
  append_f(key, cpu.mlp);
  // The bandwidth model falls back to a per-family hit efficiency keyed
  // off short_name == "KNM" only when no calibrated mcdram_hit_eff is
  // carried; fold in the *resolved* family bit for exactly that case so
  // the digest stays label-free everywhere else (and order-invariant
  // for composed variants, whose short names differ by spec order).
  if (cpu.has_mcdram() && cpu.mcdram_hit_eff <= 0.0) {
    append_i(key, cpu.short_name == "KNM" ? 1 : 0);
  }
  key += '|';
  return key;
}

std::string canonical_cpu_digest(const CpuSpec& cpu) {
  std::string key = "cpu|";
  append_i(key, cpu.smt);
  append_i(key, cpu.sockets);
  append_f(key, cpu.base_ghz);
  append_f(key, cpu.turbo_ghz);
  append_f(key, cpu.peak_ref_ghz);
  for (const double f : cpu.freq_states_ghz) append_f(key, f);
  append_f(key, cpu.tdp_w);
  append_i(key, cpu.fp64_fpu.units);
  append_i(key, cpu.fp64_fpu.vector_bits);
  append_i(key, cpu.fp64_fpu.pump);
  append_i(key, cpu.fp32_fpu.units);
  append_i(key, cpu.fp32_fpu.vector_bits);
  append_i(key, cpu.fp32_fpu.pump);
  append_f(key, cpu.fpu_issue_eff);
  append_f(key, cpu.fp32_generic_eff);
  append_i(key, cpu.int_ops_per_cycle);
  key += memory_model_digest(cpu);
  return key;
}

std::string compose_specs(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "+" + b;
}

std::size_t spec_transform_count(const std::string& spec) {
  if (spec.empty()) return 0;
  return static_cast<std::size_t>(
             std::count(spec.begin(), spec.end(), '+')) +
         1;
}

namespace {

// Area coefficients, in SIMD-pipe equivalents (one 512-bit single-pump
// FMA pipe = 1.0). First-order by design: only ratios against the base
// machine are consumed, so the constants just have to order resources
// sensibly (a core is a few pipes, HBM stacks and memory PHYs are not
// free, capacity scales linearly).
constexpr double kCoreFixedArea = 2.0;      // front-end + L1 + AGU
constexpr double kL2AreaPerKiB = 1.0 / 512; // 512 KiB of L2 ~ one pipe
constexpr double kLlcAreaPerMiB = 0.25;
constexpr double kMcdramAreaPerGiB = 0.75;  // on-package stacks + I/O
constexpr double kPhyAreaPerGBs = 0.05;     // memory controller + PHY

double fpu_area(const FpuConfig& f) {
  // Double pumping reuses the datapath; it buys throughput for roughly
  // half the area of doubling the pipe count.
  return static_cast<double>(f.units) *
         (static_cast<double>(f.vector_bits) / 512.0) *
         (1.0 + 0.5 * static_cast<double>(f.pump - 1));
}

}  // namespace

double die_area_units(const CpuSpec& cpu) {
  const double core_area = kCoreFixedArea +
                           static_cast<double>(cpu.l2_kib_per_core) *
                               kL2AreaPerKiB +
                           fpu_area(cpu.fp64_fpu) + fpu_area(cpu.fp32_fpu);
  const double uncore = cpu.llc_mib * kLlcAreaPerMiB +
                        cpu.mcdram_gib * kMcdramAreaPerGiB +
                        (cpu.dram_bw_gbs + cpu.mcdram_bw_gbs) * kPhyAreaPerGBs;
  return static_cast<double>(cpu.cores) * core_area + uncore;
}

ResourceBudget variant_budget(const CpuSpec& variant, const CpuSpec& base) {
  if (base.tdp_w <= 0.0) {
    throw std::invalid_argument("variant_budget: base machine '" +
                                base.short_name + "' has no TDP");
  }
  ResourceBudget b;
  b.area_ratio = die_area_units(variant) / die_area_units(base);
  b.tdp_ratio = variant.tdp_w / base.tdp_w;
  return b;
}

bool within_budget(const ResourceBudget& b, const BudgetLimits& limits) {
  constexpr double kSlack = 1e-9;
  return b.area_ratio <= limits.max_area_ratio * (1.0 + kSlack) &&
         b.tdp_ratio <= limits.max_tdp_ratio * (1.0 + kSlack);
}

}  // namespace fpr::arch
