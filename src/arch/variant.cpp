#include "arch/variant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fpr::arch {

namespace {

[[noreturn]] void bad(const std::string& transform, const std::string& why) {
  throw std::invalid_argument("variant transform '" + transform + "': " + why);
}

double parse_factor(const std::string& transform, const std::string& text) {
  double f = 0.0;
  try {
    std::size_t pos = 0;
    f = std::stod(text, &pos);
    if (pos != text.size()) bad(transform, "trailing junk in factor");
  } catch (const std::invalid_argument&) {
    bad(transform, "malformed factor '" + text + "'");
  } catch (const std::out_of_range&) {
    bad(transform, "factor '" + text + "' out of range");
  }
  if (!std::isfinite(f) || f <= 0.0) {
    bad(transform, "factor must be finite and > 0");
  }
  return f;
}

int integer_factor(const std::string& transform, double f, int min) {
  const double r = std::round(f);
  if (std::abs(f - r) > 1e-9 || r < min) {
    bad(transform, "factor must be an integer >= " + std::to_string(min));
  }
  return static_cast<int>(r);
}

void require_mcdram(const CpuSpec& spec, const std::string& transform) {
  if (!spec.has_mcdram()) {
    bad(transform, spec.short_name + " has no MCDRAM");
  }
}

}  // namespace

const std::vector<TransformInfo>& transform_catalogue() {
  static const std::vector<TransformInfo> catalogue = {
      {"halve-fp64", false,
       "halve the FP64 pipes (pipe count, then vector width)"},
      {"drop-fp64-vec", false,
       "remove vector FP64 entirely; scalar (64-bit) FMA retained"},
      {"widen-fp32", true,
       "multiply the FP32/VNNI pipe count (integer factor, default 2)"},
      {"dram-bw", true, "scale the DDR Triad bandwidth (default 1.5)"},
      {"mcdram-bw", true,
       "scale the MCDRAM Triad bandwidth (Phi only, default 1.5)"},
      {"mcdram-cap", true, "scale the MCDRAM capacity (Phi only, default 2)"},
      {"cores", true, "scale the core count, rounded (default 1.25)"},
      {"tdp", true, "scale the TDP envelope (default 0.85)"},
  };
  return catalogue;
}

void apply_transform(CpuSpec& spec, const std::string& transform) {
  std::string name = transform;
  bool has_factor = false;
  double factor = 0.0;
  if (const auto eq = transform.find('='); eq != std::string::npos) {
    name = transform.substr(0, eq);
    factor = parse_factor(transform, transform.substr(eq + 1));
    has_factor = true;
  }

  if (name == "halve-fp64") {
    if (has_factor) bad(transform, "takes no factor");
    if (spec.fp64_fpu.units > 1) {
      spec.fp64_fpu.units /= 2;
    } else if (spec.fp64_fpu.vector_bits > 64) {
      spec.fp64_fpu.vector_bits /= 2;
    } else {
      bad(transform, "already down to scalar FP64");
    }
  } else if (name == "drop-fp64-vec") {
    if (has_factor) bad(transform, "takes no factor");
    // Chips that shed vector DP silicon keep scalar DP (the KNM story,
    // taken to its end): one 64-bit FMA pipe survives so the machine
    // still validates and FP64 code still runs — dog slow.
    spec.fp64_fpu = FpuConfig{.units = 1, .vector_bits = 64, .pump = 1};
  } else if (name == "widen-fp32") {
    const int k = integer_factor(transform, has_factor ? factor : 2.0, 2);
    spec.fp32_fpu.units *= k;
  } else if (name == "dram-bw") {
    spec.dram_bw_gbs *= has_factor ? factor : 1.5;
  } else if (name == "mcdram-bw") {
    require_mcdram(spec, transform);
    spec.mcdram_bw_gbs *= has_factor ? factor : 1.5;
  } else if (name == "mcdram-cap") {
    require_mcdram(spec, transform);
    spec.mcdram_gib *= has_factor ? factor : 2.0;
  } else if (name == "cores") {
    const double f = has_factor ? factor : 1.25;
    spec.cores = std::max(
        1, static_cast<int>(std::lround(static_cast<double>(spec.cores) * f)));
  } else if (name == "tdp") {
    spec.tdp_w *= has_factor ? factor : 0.85;
  } else {
    bad(transform, "unknown transform");
  }
}

MachineVariant derive_variant(const CpuSpec& base, const std::string& spec) {
  MachineVariant v;
  v.spec = spec;
  v.cpu = base;
  if (!spec.empty()) {
    std::size_t begin = 0;
    while (begin <= spec.size()) {
      const std::size_t end = std::min(spec.find('+', begin), spec.size());
      const std::string transform = spec.substr(begin, end - begin);
      if (transform.empty()) {
        throw std::invalid_argument("variant spec '" + spec +
                                    "': empty transform");
      }
      apply_transform(v.cpu, transform);
      begin = end + 1;
    }
    v.cpu.short_name = base.short_name + "+" + spec;
    v.cpu.name = base.name + " [" + spec + "]";
    v.cpu.validate();  // a derived machine must be internally consistent
  }
  return v;
}

std::vector<std::string> builtin_variant_specs(const CpuSpec& base) {
  std::vector<std::string> specs = {"halve-fp64", "drop-fp64-vec",
                                    "widen-fp32", "dram-bw=1.5",
                                    "cores=1.25", "tdp=0.85"};
  if (base.has_mcdram()) {
    specs.insert(specs.begin() + 4, {"mcdram-bw=1.5", "mcdram-cap=2"});
  }
  return specs;
}

}  // namespace fpr::arch
