// Machine-variant derivation: named transforms of a base CpuSpec for the
// paper's Sec. VII what-if question — could silicon budget shift away
// from FP64 FPUs toward bandwidth and low-precision compute without
// hurting the workloads? Each transform is a small, parameterized
// rewrite of one resource (FPU pipes, bandwidths, MCDRAM capacity,
// cores, TDP); a variant composes one or more transforms and is
// re-validate()d, so an exploration grid can only contain internally
// consistent machines.
//
// Spec grammar (what `fpr explore --variants` parses):
//
//   variant  := transform ( '+' transform )*
//   transform:= name | name '=' factor
//
// e.g. "dram-bw=1.5", "halve-fp64+dram-bw=1.5". Numeric transforms take
// multiplicative factors against the base machine's value.
#pragma once

#include <string>
#include <vector>

#include "arch/cpu_spec.hpp"

namespace fpr::arch {

/// A derived machine: the composed spec string, the derived short name
/// ("<base>+<spec>", unique per spec and never colliding with a Table I
/// machine), and the re-validated CpuSpec.
struct MachineVariant {
  std::string spec;  ///< canonical transform spec ("" = the base itself)
  CpuSpec cpu;
};

/// One catalogue entry per named transform (name, value semantics,
/// one-line description) — the material `fpr explore` prints in its
/// usage and README table.
struct TransformInfo {
  std::string name;
  bool takes_factor = false;
  std::string description;
};

/// The built-in transform catalogue (>= 6 entries).
const std::vector<TransformInfo>& transform_catalogue();

/// Apply a single "name[=factor]" transform to `spec` in place (no
/// validation; derive_variant validates the composition). Throws
/// std::invalid_argument for unknown names, malformed or non-positive
/// factors, and MCDRAM transforms on machines without MCDRAM.
void apply_transform(CpuSpec& spec, const std::string& transform);

/// Derive a named, validated variant of `base` from a composed spec
/// ("t1+t2+..."). The derived short name is "<base.short_name>+<spec>".
/// Throws std::invalid_argument when a transform is unknown/malformed or
/// the composed machine fails CpuSpec::validate() (e.g. a dram-bw factor
/// that pushes DDR past the MCDRAM).
MachineVariant derive_variant(const CpuSpec& base, const std::string& spec);

/// The default exploration grid for `base`: every applicable built-in
/// transform applied singly with its default factor (>= 6 specs for any
/// base; MCDRAM transforms are included only for MCDRAM machines).
std::vector<std::string> builtin_variant_specs(const CpuSpec& base);

// ---------------------------------------------------------------------
// Canonical machine form + transform composition + budget accounting:
// the substrate of the incremental design-space search (study::
// VariantEvaluator / study::ParetoEngine).

/// Canonical digest of the *resolved* machine: a textual encoding of
/// every CpuSpec field the evaluation pipeline reads (geometry,
/// bandwidths, latencies, FPU configuration, frequencies, TDP), with
/// the identity labels (name, short_name, model, isa) deliberately
/// excluded. Two variants have equal digests iff they are the same
/// machine — so order-equivalent compositions ("cores=2+tdp=0.9" vs
/// "tdp=0.9+cores=2") and factor respellings ("dram-bw=1.5" vs
/// "dram-bw=1.50") canonicalize identically and can be deduplicated
/// without ever comparing spec strings.
std::string canonical_cpu_digest(const CpuSpec& cpu);

/// Digest of only the fields the memory-profile path reads (the
/// per-core slicing, the hierarchy-replay geometry, and the bandwidth/
/// latency models — see model::profile_memory). Variants that differ
/// purely in compute or power resources (FPU respins, TDP envelopes)
/// share this digest with their base, which is what lets a model-level
/// memo reuse whole MemoryProfiles across such variants.
std::string memory_model_digest(const CpuSpec& cpu);

/// Compose two transform specs into one ("a", "b" -> "a+b"; an empty
/// side drops out, so compose_specs("", "tdp=0.9") == "tdp=0.9").
std::string compose_specs(const std::string& a, const std::string& b);

/// Number of transforms in a composed spec (0 for the empty spec).
std::size_t spec_transform_count(const std::string& spec);

/// First-order silicon/power budget of a variant relative to its base.
/// Area is a planar estimate in SIMD-pipe equivalents (one 512-bit FMA
/// pipe = 1.0): cores pay a fixed front-end/L1 allowance plus their L2
/// slice and FPU pipes, the uncore pays for LLC/MCDRAM capacity and
/// memory-PHY bandwidth. The absolute constants are calibration-free —
/// only the *ratio* against the base machine is meaningful, which is
/// all a constant-budget procurement search needs.
struct ResourceBudget {
  double area_ratio = 1.0;  ///< estimated die area vs the base machine
  double tdp_ratio = 1.0;   ///< TDP envelope vs the base machine
};

/// Constraint box for a design-space search. The defaults encode the
/// paper's procurement premise: a candidate may be no bigger and no
/// hotter than the silicon the site actually bought.
struct BudgetLimits {
  double max_area_ratio = 1.0;
  double max_tdp_ratio = 1.0;
};

/// Estimated area in SIMD-pipe equivalents (the unit ResourceBudget's
/// area ratios are built from; exposed for tests).
double die_area_units(const CpuSpec& cpu);

ResourceBudget variant_budget(const CpuSpec& variant, const CpuSpec& base);

/// True when `b` fits `limits` (with a 1e-9 relative slack so a
/// transform that exactly preserves a resource never flickers out on
/// rounding).
bool within_budget(const ResourceBudget& b, const BudgetLimits& limits);

}  // namespace fpr::arch
