// Machine-variant derivation: named transforms of a base CpuSpec for the
// paper's Sec. VII what-if question — could silicon budget shift away
// from FP64 FPUs toward bandwidth and low-precision compute without
// hurting the workloads? Each transform is a small, parameterized
// rewrite of one resource (FPU pipes, bandwidths, MCDRAM capacity,
// cores, TDP); a variant composes one or more transforms and is
// re-validate()d, so an exploration grid can only contain internally
// consistent machines.
//
// Spec grammar (what `fpr explore --variants` parses):
//
//   variant  := transform ( '+' transform )*
//   transform:= name | name '=' factor
//
// e.g. "dram-bw=1.5", "halve-fp64+dram-bw=1.5". Numeric transforms take
// multiplicative factors against the base machine's value.
#pragma once

#include <string>
#include <vector>

#include "arch/cpu_spec.hpp"

namespace fpr::arch {

/// A derived machine: the composed spec string, the derived short name
/// ("<base>+<spec>", unique per spec and never colliding with a Table I
/// machine), and the re-validated CpuSpec.
struct MachineVariant {
  std::string spec;  ///< canonical transform spec ("" = the base itself)
  CpuSpec cpu;
};

/// One catalogue entry per named transform (name, value semantics,
/// one-line description) — the material `fpr explore` prints in its
/// usage and README table.
struct TransformInfo {
  std::string name;
  bool takes_factor = false;
  std::string description;
};

/// The built-in transform catalogue (>= 6 entries).
const std::vector<TransformInfo>& transform_catalogue();

/// Apply a single "name[=factor]" transform to `spec` in place (no
/// validation; derive_variant validates the composition). Throws
/// std::invalid_argument for unknown names, malformed or non-positive
/// factors, and MCDRAM transforms on machines without MCDRAM.
void apply_transform(CpuSpec& spec, const std::string& transform);

/// Derive a named, validated variant of `base` from a composed spec
/// ("t1+t2+..."). The derived short name is "<base.short_name>+<spec>".
/// Throws std::invalid_argument when a transform is unknown/malformed or
/// the composed machine fails CpuSpec::validate() (e.g. a dram-bw factor
/// that pushes DDR past the MCDRAM).
MachineVariant derive_variant(const CpuSpec& base, const std::string& spec);

/// The default exploration grid for `base`: every applicable built-in
/// transform applied singly with its default factor (>= 6 specs for any
/// base; MCDRAM transforms are included only for MCDRAM machines).
std::vector<std::string> builtin_variant_specs(const CpuSpec& base);

}  // namespace fpr::arch
