#include "arch/cpu_spec.hpp"

#include <algorithm>
#include <cmath>

namespace fpr::arch {

double CpuSpec::peak_gflops(Precision p, double ghz) const {
  const FpuConfig& fpu = p == Precision::fp64 ? fp64_fpu : fp32_fpu;
  return static_cast<double>(cores) * ghz *
         static_cast<double>(fpu.flops_per_cycle(p));
}

double CpuSpec::peak_giops(double ghz) const {
  return static_cast<double>(cores) * ghz *
         static_cast<double>(int_ops_per_cycle);
}

std::vector<FreqState> CpuSpec::frequency_sweep() const {
  std::vector<FreqState> states;
  states.reserve(freq_states_ghz.size() + 1);
  for (double f : freq_states_ghz) states.push_back({f, false});
  // The paper's pessimistic turbo assumption: +100 MHz across all cores.
  states.push_back({freq_states_ghz.back() + 0.1, true});
  return states;
}

void CpuSpec::validate() const {
  auto fail = [this](const char* what) {
    throw std::invalid_argument(short_name + ": " + what);
  };
  if (cores <= 0) fail("cores must be positive");
  if (smt <= 0) fail("smt must be positive");
  if (base_ghz <= 0.0 || turbo_ghz < base_ghz) fail("bad frequencies");
  if (peak_ref_ghz <= 0.0 || peak_ref_ghz > turbo_ghz)
    fail("peak reference frequency out of range");
  if (freq_states_ghz.empty()) fail("need at least one frequency state");
  if (!std::is_sorted(freq_states_ghz.begin(), freq_states_ghz.end()))
    fail("frequency states must be ascending");
  if (freq_states_ghz.back() > base_ghz + 1e-9)
    fail("throttle states must not exceed base frequency");
  if (dram_bw_gbs <= 0.0) fail("DRAM bandwidth required");
  if (has_mcdram() && mcdram_bw_gbs <= dram_bw_gbs)
    fail("MCDRAM must be faster than DRAM");
  if (fp64_fpu.flops_per_cycle(Precision::fp64) <= 0)
    fail("FP64 FPU configuration empty");
  if (fp32_fpu.flops_per_cycle(Precision::fp32) <= 0)
    fail("FP32 FPU configuration empty");
  if (int_ops_per_cycle <= 0) fail("integer throughput required");
  if (fpu_issue_eff <= 0.0 || fpu_issue_eff > 1.0)
    fail("fpu_issue_eff must be in (0, 1]");
  if (mlp <= 0.0 || dram_latency_ns <= 0.0) fail("latency model incomplete");
}

}  // namespace fpr::arch
