// The `fpr` suite-runner: one driveable entry point over the whole
// reproduction. Subcommands:
//
//   fpr list                      all registered proxy kernels (Table II)
//   fpr tables                    the static paper tables (I, II, III)
//   fpr run --kernel A,B ...      run a subset: op-mix assay + per-machine
//                                 model projection + roofline placement
//
// The command core is a library function taking explicit streams so the
// CLI is testable without spawning processes; src/cli/main.cpp is the
// only piece that touches argv/std::cout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fpr::cli {

/// Process exit codes, shared by every fpr subcommand (and mirrored by
/// the standalone tools). Named so exit-path meaning stays greppable —
/// the bare-exit-code lint rule rejects integer literals in `return`
/// statements of command handlers.
inline constexpr int kExitOk = 0;        ///< command succeeded
inline constexpr int kExitFailure = 1;   ///< ran, but failed (I/O, verify)
inline constexpr int kExitUsage = 2;     ///< bad flags / unknown command
inline constexpr int kExitBadInput = 3;  ///< well-formed flags, bad data

/// Execute the `fpr` command line. `args` excludes the program name.
/// Normal output goes to `out`, diagnostics/usage errors to `err`.
/// Returns the process exit code (kExitOk, kExitUsage on usage errors,
/// kExitFailure on runtime errors, kExitBadInput on malformed inputs).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace fpr::cli
