// The `fpr` suite-runner: one driveable entry point over the whole
// reproduction. Subcommands:
//
//   fpr list                      all registered proxy kernels (Table II)
//   fpr tables                    the static paper tables (I, II, III)
//   fpr run --kernel A,B ...      run a subset: op-mix assay + per-machine
//                                 model projection + roofline placement
//
// The command core is a library function taking explicit streams so the
// CLI is testable without spawning processes; src/cli/main.cpp is the
// only piece that touches argv/std::cout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fpr::cli {

/// Execute the `fpr` command line. `args` excludes the program name.
/// Normal output goes to `out`, diagnostics/usage errors to `err`.
/// Returns the process exit code (0 ok, 2 usage error, 1 runtime error).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace fpr::cli
