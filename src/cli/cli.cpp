#include "cli/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "arch/machines.hpp"
#include "common/table.hpp"
#include "counters/op_tally.hpp"
#include "kernels/kernel.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"
#include "model/roofline.hpp"
#include "study/figures.hpp"
#include "study/methodology.hpp"

namespace fpr::cli {
namespace {

constexpr const char* kUsage =
    "usage: fpr <command> [options]\n"
    "\n"
    "commands:\n"
    "  list                 list all registered proxy kernels (Table II)\n"
    "  tables               print the static paper tables (I, II, III)\n"
    "  run [options]        run kernels: op-mix assay + machine projection\n"
    "  help                 show this message\n"
    "\n"
    "run options:\n"
    "  --kernel A[,B,...]   kernel abbreviations to run (default: all;\n"
    "                       repeatable, comma-separated)\n"
    "  --scale S            input scale multiplier, > 0 (default 0.3)\n"
    "  --threads N          worker threads, 0 = all hardware (default 0)\n"
    "  --repeats R          trials per kernel, fastest kept (default 3)\n"
    "  --seed N             PRNG seed for synthetic inputs (default 42)\n"
    "  --auto-threads       pick threads per kernel via the step-2\n"
    "                       parallelism search (overrides --threads)\n"
    "  --csv                emit CSV instead of aligned tables\n";

struct RunOptions {
  std::vector<std::string> kernels;  // empty = all, in paper order
  double scale = 0.3;
  unsigned threads = 0;
  int repeats = 3;
  std::uint64_t seed = 42;
  bool auto_threads = false;
  bool csv = false;
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void print(const TextTable& t, bool csv, std::ostream& out) {
  if (csv) {
    t.print_csv(out);
  } else {
    t.print(out);
  }
  out << "\n";
}

int usage_error(std::ostream& err, const std::string& message) {
  err << "fpr: " << message << "\n" << kUsage;
  return 2;
}

int cmd_list(bool csv, std::ostream& out) {
  TextTable t({"#", "Abbrev", "Name", "Suite", "Domain", "Pattern",
               "Language", "Paper input"});
  long long n = 0;
  for (const auto& k : kernels::make_all()) {
    const auto& info = k->info();
    t.row()
        .integer(++n)
        .cell(info.abbrev)
        .cell(info.name)
        .cell(to_string(info.suite))
        .cell(to_string(info.domain))
        .cell(to_string(info.pattern))
        .cell(info.language)
        .cell(info.paper_input)
        .done();
  }
  print(t, csv, out);
  return 0;
}

int cmd_tables(bool csv, std::ostream& out) {
  print(study::table1_hardware(), csv, out);
  print(study::table2_categorization(), csv, out);
  print(study::table3_metrics(), csv, out);
  return 0;
}

/// Fig. 1-style operation-mix row for one measured kernel.
void add_opmix_row(TextTable& t, const model::WorkloadMeasurement& m) {
  const auto& ops = m.ops;
  const double giga = 1e9;
  t.row()
      .cell(m.name)
      .num(static_cast<double>(ops.fp64) / giga, 1)
      .num(static_cast<double>(ops.fp32) / giga, 1)
      .num(static_cast<double>(ops.int_ops) / giga, 1)
      .num(100.0 * ops.fp64_share(), 1)
      .num(100.0 * ops.fp32_share(), 1)
      .num(100.0 * ops.int_share(), 1)
      .num(static_cast<double>(ops.bytes_read + ops.bytes_written) / giga, 1)
      .num(m.host_seconds, 4)
      .cell(m.verified ? "yes" : "NO")
      .done();
}

/// Per-machine model projection (Fig. 2/Table IV-style metrics) plus the
/// kernel's placement on each machine's roofline (Fig. 5 coordinates).
/// One row per (kernel, machine) appended to the shared table.
void add_projection_rows(TextTable& t, const std::string& abbrev,
                         const model::WorkloadMeasurement& meas) {
  for (const auto& cpu : arch::all_machines()) {
    const auto mem = model::profile_memory(cpu, meas);
    const auto ev = model::evaluate_at_turbo(cpu, meas, mem);
    const auto rp = model::roofline_point(cpu, meas, mem, ev);
    t.row()
        .cell(abbrev)
        .cell(cpu.short_name)
        .cell(std::string(model::to_string(ev.bound)))
        .num(ev.seconds, 3)
        .num(ev.gflops, 1)
        .num(ev.pct_of_peak, 1)
        .num(ev.mem_throughput_gbs, 1)
        .num(rp.arithmetic_intensity, 3)
        .num(rp.attainable_gflops, 1)
        .cell(rp.memory_side ? "memory" : "compute")
        .done();
  }
}

int cmd_run(const RunOptions& opt, std::ostream& out, std::ostream& err) {
  const auto known = kernels::all_abbrevs();
  auto selection = opt.kernels.empty() ? known : opt.kernels;
  for (const auto& abbrev : selection) {
    if (std::find(known.begin(), known.end(), abbrev) == known.end()) {
      std::string names;
      for (const auto& k : known) names += (names.empty() ? "" : ",") + k;
      return usage_error(err,
                         "unknown kernel '" + abbrev + "' (known: " + names +
                             ")");
    }
  }

  err << "[fpr] running " << selection.size() << " kernel(s) at scale "
      << opt.scale << ", " << opt.repeats << " repeat(s)\n";
  // In CSV mode stdout must stay machine-parsable: section headings are
  // diagnostics and move to the error stream.
  std::ostream& heading = opt.csv ? err : out;

  kernels::RunConfig rc;
  rc.scale = opt.scale;
  rc.threads = opt.threads;
  rc.seed = opt.seed;

  TextTable opmix({"Kernel", "FP64[Gop]", "FP32[Gop]", "INT[Gop]", "FP64%",
                   "FP32%", "INT%", "Moved[GB]", "Assay[s]", "Verified"});
  TextTable search({"Kernel", "Threads tried (t:sec)", "Best threads",
                    "Best[s]"});
  TextTable projection({"Kernel", "Machine", "Bound", "t2sol[s]", "Gflop/s",
                        "%peak", "Mem[GB/s]", "AI[f/B]", "Roof[Gflop/s]",
                        "Side"});
  for (const auto& abbrev : selection) {
    const auto kernel = kernels::make(abbrev);
    if (opt.auto_threads) {
      const auto choice =
          study::find_best_parallelism(*kernel, opt.scale, opt.repeats);
      std::string tried;
      for (const auto& [t, s] : choice.tried) {
        if (!tried.empty()) tried += ' ';
        tried += std::to_string(t);
        tried += ':';
        tried += fmt_double(s, 4);
      }
      search.row()
          .cell(abbrev)
          .cell(tried)
          .integer(choice.threads)
          .num(choice.best_seconds, 4)
          .done();
      rc.threads = choice.threads;
    }
    const auto run = study::performance_run(*kernel, rc, opt.repeats);
    add_opmix_row(opmix, run.best_meas);
    add_projection_rows(projection, abbrev, run.best_meas);
  }

  if (opt.auto_threads) {
    heading << "Parallelism search (methodology step 2):\n";
    print(search, opt.csv, out);
  }

  heading << "Operation mix (paper-scale counts, fastest of " << opt.repeats
          << " run(s)):\n";
  print(opmix, opt.csv, out);
  heading << "Machine projection + roofline placement:\n";
  print(projection, opt.csv, out);
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) return usage_error(err, "missing command");
  const std::string& command = args[0];
  if (command == "help" || command == "--help" || command == "-h") {
    out << kUsage;
    return 0;
  }

  RunOptions opt;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("option " + arg + " needs a value");
      }
      return args[++i];
    };
    // Numeric parse wrapper: std::sto* exceptions carry messages like
    // "stod"; rethrow with the offending option and text instead.
    auto number = [&](auto parse) {
      const std::string& text = value();
      try {
        return parse(text);
      } catch (const std::exception&) {
        throw std::invalid_argument("invalid value '" + text + "' for " +
                                    arg);
      }
    };
    try {
      if (arg == "--csv") {
        opt.csv = true;
      } else if (arg == "--auto-threads") {
        opt.auto_threads = true;
      } else if (arg == "--kernel" || arg == "--kernels") {
        auto parts = split_csv(value());
        if (parts.empty()) {
          return usage_error(err, arg + " needs at least one abbreviation");
        }
        for (auto& k : parts) opt.kernels.push_back(std::move(k));
      } else if (arg == "--scale") {
        opt.scale = number([](const std::string& t) { return std::stod(t); });
        if (opt.scale <= 0.0) {
          return usage_error(err, "--scale must be > 0");
        }
      } else if (arg == "--threads") {
        // stoul wraps negatives instead of throwing; reject them up
        // front, and cap the count before kernels size per-worker state
        // from it.
        opt.threads = number([](const std::string& t) {
          if (t.find('-') != std::string::npos) throw std::invalid_argument(t);
          const unsigned long v = std::stoul(t);
          if (v > 4096) throw std::invalid_argument(t);
          return static_cast<unsigned>(v);
        });
      } else if (arg == "--repeats") {
        opt.repeats =
            number([](const std::string& t) { return std::stoi(t); });
        if (opt.repeats < 1) {
          return usage_error(err, "--repeats must be >= 1");
        }
      } else if (arg == "--seed") {
        opt.seed =
            number([](const std::string& t) { return std::stoull(t); });
      } else {
        return usage_error(err, "unknown option '" + arg + "'");
      }
    } catch (const std::invalid_argument& e) {
      return usage_error(err, e.what());
    }
  }

  try {
    if (command == "list") return cmd_list(opt.csv, out);
    if (command == "tables") return cmd_tables(opt.csv, out);
    if (command == "run") return cmd_run(opt, out, err);
  } catch (const std::exception& e) {
    err << "fpr: error: " << e.what() << "\n";
    return 1;
  }
  return usage_error(err, "unknown command '" + command + "'");
}

}  // namespace fpr::cli
