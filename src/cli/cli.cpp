#include "cli/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include <cmath>
#include <cstdio>
#include <limits>

#include "arch/machines.hpp"
#include "arch/variant.hpp"
#include "common/execution_context.hpp"
#include "common/table.hpp"
#include "counters/op_tally.hpp"
#include "io/explore_json.hpp"
#include "io/pareto_json.hpp"
#include "io/study_json.hpp"
#include "io/trace_format.hpp"
#include "io/trace_replay.hpp"
#include "kernels/kernel.hpp"
#include "memsim/trace_source.hpp"
#include "model/exec_model.hpp"
#include "model/memprofile.hpp"
#include "model/roofline.hpp"
#include "study/explore.hpp"
#include "study/figures.hpp"
#include "study/pareto.hpp"
#include "study/methodology.hpp"
#include "study/study_engine.hpp"

namespace fpr::cli {
namespace {

constexpr const char* kUsage =
    "usage: fpr <command> [options]\n"
    "\n"
    "commands:\n"
    "  list                 list all registered proxy kernels (Table II)\n"
    "  tables               print the static paper tables (I, II, III)\n"
    "  run [options]        run kernels: op-mix assay + machine projection\n"
    "  study [options]      full pipeline (kernel run -> memsim -> model ->\n"
    "                       freq sweep) on the parallel StudyEngine\n"
    "  memsim [options]     per-kernel x machine cache-hierarchy hit-rate\n"
    "                       table (the simulated PCM counters)\n"
    "  trace FILE [options] replay a recorded fpr-trace binary address\n"
    "                       trace through the same hierarchy simulation\n"
    "                       and print the per-machine hit-rate table\n"
    "                       (record/convert files with the fpr-trace tool)\n"
    "  explore [options]    what-if machine exploration: sweep the kernels\n"
    "                       across derived variants of a base machine and\n"
    "                       score each variant against it (Sec. VII)\n"
    "  pareto [options]     multi-objective design-space search: compose\n"
    "                       transforms under an area/TDP budget and keep\n"
    "                       the non-dominated frontier over time, energy,\n"
    "                       and the site projection (Sec. VII extended)\n"
    "  diff A.json B.json   compare two results files (study, explore, or\n"
    "                       pareto) metric by metric (relative deltas)\n"
    "  help                 show this message\n"
    "\n"
    "run/study options:\n"
    "  --kernel A[,B,...]   kernel abbreviations to run (default: all;\n"
    "                       repeatable, comma-separated)\n"
    "  --scale S            input scale multiplier, > 0 (default 0.3)\n"
    "  --threads N          worker threads, 0 = all hardware (default 0)\n"
    "  --repeats R          [run] trials per kernel, fastest kept (default 3)\n"
    "  --seed N             PRNG seed for synthetic inputs (default 42)\n"
    "  --auto-threads       [run] pick threads per kernel via the step-2\n"
    "                       parallelism search (overrides --threads)\n"
    "  --csv                emit CSV instead of aligned tables\n"
    "\n"
    "study options:\n"
    "  --jobs N             engine workers for the per-machine stages\n"
    "                       (0 = all hardware, default 0; never changes\n"
    "                       the results, only the wall time)\n"
    "  --kernel-jobs K      concurrent instrumented kernel runs, each in\n"
    "                       its own execution context with a private\n"
    "                       --threads worker pool (0 = all hardware,\n"
    "                       default 1; never changes the results)\n"
    "  --trace-refs N       cache-sim trace length (default 400000)\n"
    "  --no-sweep           skip the Fig. 6 frequency sweep\n"
    "  --timing             keep wall-clock host_seconds in the output\n"
    "                       (default: zeroed so JSON is byte-stable)\n"
    "  --out FILE           write results JSON to FILE ('-' = stdout,\n"
    "                       suppressing the summary table)\n"
    "  --golden             use the exact golden-snapshot configuration\n"
    "                       (overrides kernel/scale/threads/seed/\n"
    "                       trace-refs; rejects --timing/--no-sweep)\n"
    "\n"
    "memsim options:\n"
    "  --refs N             trace references per simulation (also accepted\n"
    "                       as --trace-refs; default 400000)\n"
    "  --scale-shift S      capacity scale-down exponent: footprints and\n"
    "                       cache sizes shrink by 2^S (default 8, max 30)\n"
    "  --shard-jobs J       shard each replay across up to J pool workers\n"
    "                       (default 0 = serial; results are identical\n"
    "                       for every J, only wall time changes)\n"
    "\n"
    "trace options (plus --refs/--scale-shift/--shard-jobs/--csv as\n"
    "above):\n"
    "  --machine M[,M...]   replay only on the named Table I machines\n"
    "                       (default: all)\n"
    "  --refs N             measured references, > 0 (default: every\n"
    "                       record after the warmup prefix)\n"
    "  --warmup N           records replayed uncounted before measuring\n"
    "                       starts (default 0; traces recorded with\n"
    "                       'fpr-trace record' carry their own prefix)\n"
    "  --out FILE           write a per-machine trace profile JSON\n"
    "                       ('-' = stdout, suppressing the table)\n"
    "\n"
    "explore options (plus --kernel/--scale/--threads/--seed/--trace-refs/\n"
    "--jobs/--kernel-jobs/--csv/--out as above):\n"
    "  --base M             base machine short name: KNL, KNM, or BDW\n"
    "                       (default KNL)\n"
    "  --variants S[,S...]  variant specs to derive from the base\n"
    "                       (default: the built-in grid). A spec composes\n"
    "                       transforms with '+': name or name=FACTOR, e.g.\n"
    "                       halve-fp64+dram-bw=1.5. Transforms: halve-fp64,\n"
    "                       drop-fp64-vec, widen-fp32[=K], dram-bw[=F],\n"
    "                       mcdram-bw[=F], mcdram-cap[=F], cores[=F],\n"
    "                       tdp[=F]; factors scale the base value\n"
    "  --golden             use the exact explore-snapshot configuration\n"
    "                       (overrides base/variants/kernel/scale/threads/\n"
    "                       seed/trace-refs)\n"
    "\n"
    "pareto options (plus --base/--kernel/--scale/--threads/--seed/\n"
    "--trace-refs/--jobs/--kernel-jobs/--csv/--out as above):\n"
    "  --budget-area F      max die-area ratio vs the base, > 0 (default\n"
    "                       1.0: no bigger than the purchased silicon)\n"
    "  --budget-tdp F       max TDP ratio vs the base, > 0 (default 1.0)\n"
    "  --objectives A[,B..] frontier objectives, a subset of time, energy,\n"
    "                       site (default time,energy,site)\n"
    "  --rounds R           expansion rounds after the seed batch\n"
    "                       (default 3)\n"
    "  --explorers E        seeded random walks proposed per round\n"
    "                       (default 16)\n"
    "  --max-depth D        max transforms composed per candidate, >= 1\n"
    "                       (default 4)\n"
    "  --search-seed N      explorer-walk seed (default 2019; results are\n"
    "                       identical for every --jobs at a fixed seed)\n"
    "\n"
    "diff options:\n"
    "  --tolerance T        max relative delta accepted per metric\n"
    "                       (default 0; exit 1 if any metric exceeds it)\n"
    "\n"
    "exit codes: 0 ok; 1 runtime error or diff over tolerance; 2 usage\n"
    "error; 3 diff/trace input file missing, unreadable, or malformed\n";

struct RunOptions {
  std::vector<std::string> kernels;  // empty = all, in paper order
  double scale = 0.3;
  unsigned threads = 0;
  int repeats = 3;
  std::uint64_t seed = 42;
  bool auto_threads = false;
  bool csv = false;
  // study
  unsigned jobs = 0;        // 0 = all hardware
  unsigned kernel_jobs = 1;  // 0 = all hardware
  std::uint64_t trace_refs = model::kDefaultTraceRefs;
  bool refs_explicit = false;  // trace: --refs given (else whole file)
  unsigned scale_shift = model::kDefaultScaleShift;  // memsim
  unsigned shard_jobs = 0;  // memsim: workers per replay, 0 = serial
  // trace
  std::uint64_t warmup = 0;
  std::vector<std::string> machines;  // empty = all Table I machines
  bool no_sweep = false;
  bool timing = false;
  bool golden = false;
  std::string out;  // results JSON destination; "-" = stdout
  // explore
  std::string base = "KNL";
  std::vector<std::string> variants;  // empty = built-in grid
  // pareto
  double budget_area = 1.0;
  double budget_tdp = 1.0;
  std::vector<std::string> objectives;  // empty = time,energy,site
  unsigned rounds = 3;
  unsigned explorers = 16;
  unsigned max_depth = 4;
  std::uint64_t search_seed = 2019;
  // diff
  double tolerance = 0.0;
  // non-option arguments (diff's two file paths)
  std::vector<std::string> positional;
};

/// Shared validation for worker-count options (--threads, --jobs,
/// --kernel-jobs): reject negatives (stoul would wrap them) and cap the
/// count before anything sizes per-worker state from it.
unsigned parse_worker_count(const std::string& t) {
  if (t.find('-') != std::string::npos) throw std::invalid_argument(t);
  const unsigned long v = std::stoul(t);
  if (v > 4096) throw std::invalid_argument(t);
  return static_cast<unsigned>(v);
}

/// Unsigned 64-bit option values (--seed, --trace-refs): reject
/// '-'-prefixed text the same way parse_worker_count does instead of
/// letting stoull silently wrap a negative into ~1.8e19.
std::uint64_t parse_u64(const std::string& t) {
  if (t.find('-') != std::string::npos) throw std::invalid_argument(t);
  return std::stoull(t);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void print(const TextTable& t, bool csv, std::ostream& out) {
  if (csv) {
    t.print_csv(out);
  } else {
    t.print(out);
  }
  out << "\n";
}

int usage_error(std::ostream& err, const std::string& message) {
  err << "fpr: " << message << "\n" << kUsage;
  return kExitUsage;
}

int cmd_list(bool csv, std::ostream& out) {
  TextTable t({"#", "Abbrev", "Name", "Suite", "Domain", "Pattern",
               "Language", "Paper input"});
  long long n = 0;
  for (const auto& k : kernels::make_all()) {
    const auto& info = k->info();
    t.row()
        .integer(++n)
        .cell(info.abbrev)
        .cell(info.name)
        .cell(to_string(info.suite))
        .cell(to_string(info.domain))
        .cell(to_string(info.pattern))
        .cell(info.language)
        .cell(info.paper_input)
        .done();
  }
  print(t, csv, out);
  return kExitOk;
}

int cmd_tables(bool csv, std::ostream& out) {
  print(study::table1_hardware(), csv, out);
  print(study::table2_categorization(), csv, out);
  print(study::table3_metrics(), csv, out);
  return kExitOk;
}

/// Fig. 1-style operation-mix row for one measured kernel.
void add_opmix_row(TextTable& t, const model::WorkloadMeasurement& m) {
  const auto& ops = m.ops;
  const double giga = 1e9;
  t.row()
      .cell(m.name)
      .num(static_cast<double>(ops.fp64) / giga, 1)
      .num(static_cast<double>(ops.fp32) / giga, 1)
      .num(static_cast<double>(ops.int_ops) / giga, 1)
      .num(100.0 * ops.fp64_share(), 1)
      .num(100.0 * ops.fp32_share(), 1)
      .num(100.0 * ops.int_share(), 1)
      .num(static_cast<double>(ops.bytes_read + ops.bytes_written) / giga, 1)
      .num(m.host_seconds, 4)
      .cell(m.verified ? "yes" : "NO")
      .done();
}

/// Per-machine model projection (Fig. 2/Table IV-style metrics) plus the
/// kernel's placement on each machine's roofline (Fig. 5 coordinates).
/// One row per (kernel, machine) appended to the shared table. The
/// hierarchy replays memoize through `cache` so repeated projections of
/// identical sliced specs simulate once per command.
void add_projection_rows(TextTable& t, const std::string& abbrev,
                         const model::WorkloadMeasurement& meas,
                         memsim::SimCache* cache) {
  for (const auto& cpu : arch::all_machines()) {
    const auto mem =
        model::profile_memory(cpu, meas, model::kDefaultTraceRefs,
                              model::kDefaultScaleShift, cache);
    const auto ev = model::evaluate_at_turbo(cpu, meas, mem);
    const auto rp = model::roofline_point(cpu, meas, mem, ev);
    t.row()
        .cell(abbrev)
        .cell(cpu.short_name)
        .cell(std::string(model::to_string(ev.bound)))
        .num(ev.seconds, 3)
        .num(ev.gflops, 1)
        .num(ev.pct_of_peak, 1)
        .num(ev.mem_throughput_gbs, 1)
        .num(rp.arithmetic_intensity, 3)
        .num(rp.attainable_gflops, 1)
        .cell(rp.memory_side ? "memory" : "compute")
        .done();
  }
}

/// Validate a kernel selection against the registry; returns the full
/// list when `requested` is empty. Sets `bad` on unknown abbreviations.
std::vector<std::string> resolve_kernels(
    const std::vector<std::string>& requested, std::string& bad) {
  const auto known = kernels::all_abbrevs();
  auto selection = requested.empty() ? known : requested;
  for (const auto& abbrev : selection) {
    if (std::find(known.begin(), known.end(), abbrev) == known.end()) {
      std::string names;
      for (const auto& k : known) names += (names.empty() ? "" : ",") + k;
      bad = "unknown kernel '" + abbrev + "' (known: " + names + ")";
      break;
    }
  }
  return selection;
}

int cmd_run(const RunOptions& opt, std::ostream& out, std::ostream& err) {
  std::string bad;
  const auto selection = resolve_kernels(opt.kernels, bad);
  if (!bad.empty()) return usage_error(err, bad);

  err << "[fpr] running " << selection.size() << " kernel(s) at scale "
      << opt.scale << ", " << opt.repeats << " repeat(s)\n";
  // In CSV mode stdout must stay machine-parsable: section headings are
  // diagnostics and move to the error stream.
  std::ostream& heading = opt.csv ? err : out;

  kernels::RunConfig rc;
  rc.scale = opt.scale;
  rc.threads = opt.threads;
  rc.seed = opt.seed;

  TextTable opmix({"Kernel", "FP64[Gop]", "FP32[Gop]", "INT[Gop]", "FP64%",
                   "FP32%", "INT%", "Moved[GB]", "Assay[s]", "Verified"});
  TextTable search({"Kernel", "Threads tried (t:sec)", "Best threads",
                    "Best[s]"});
  TextTable projection({"Kernel", "Machine", "Bound", "t2sol[s]", "Gflop/s",
                        "%peak", "Mem[GB/s]", "AI[f/B]", "Roof[Gflop/s]",
                        "Side"});
  memsim::SimCache sim_cache;
  for (const auto& abbrev : selection) {
    const auto kernel = kernels::make(abbrev);
    if (opt.auto_threads) {
      const auto choice =
          study::find_best_parallelism(*kernel, opt.scale, opt.repeats);
      std::string tried;
      for (const auto& [t, s] : choice.tried) {
        if (!tried.empty()) tried += ' ';
        tried += std::to_string(t);
        tried += ':';
        tried += fmt_double(s, 4);
      }
      search.row()
          .cell(abbrev)
          .cell(tried)
          .integer(choice.threads)
          .num(choice.best_seconds, 4)
          .done();
      rc.threads = choice.threads;
    }
    const auto run = study::performance_run(*kernel, rc, opt.repeats);
    add_opmix_row(opmix, run.best_meas);
    add_projection_rows(projection, abbrev, run.best_meas, &sim_cache);
  }

  if (opt.auto_threads) {
    heading << "Parallelism search (methodology step 2):\n";
    print(search, opt.csv, out);
  }

  heading << "Operation mix (paper-scale counts, fastest of " << opt.repeats
          << " run(s)):\n";
  print(opmix, opt.csv, out);
  heading << "Machine projection + roofline placement:\n";
  print(projection, opt.csv, out);
  return kExitOk;
}

int cmd_study(const RunOptions& opt, std::ostream& out, std::ostream& err) {
  study::StudyConfig cfg;
  if (opt.golden) {
    if (opt.timing || opt.no_sweep) {
      return usage_error(
          err, "--golden fixes the snapshot configuration and cannot be "
               "combined with --timing or --no-sweep");
    }
    cfg = study::golden_config();
  } else {
    std::string bad;
    cfg.kernels = resolve_kernels(opt.kernels, bad);
    if (!bad.empty()) return usage_error(err, bad);
    cfg.scale = opt.scale;
    cfg.threads = opt.threads;
    cfg.seed = opt.seed;
    cfg.trace_refs = opt.trace_refs;
    cfg.freq_sweep = !opt.no_sweep;
    cfg.canonical_timing = !opt.timing;
  }
  // Job counts never change the results, so they stay user-controlled
  // even under --golden.
  cfg.jobs = opt.jobs;
  cfg.kernel_jobs = opt.kernel_jobs;

  err << "[fpr] study: " << cfg.kernels.size() << " kernel(s) at scale "
      << cfg.scale << ", jobs=" << cfg.jobs << ", kernel-jobs="
      << cfg.kernel_jobs << " (0 = all hardware)\n";

  study::StudyEngine engine(cfg);
  const auto results = engine.run();
  const bool json_to_stdout = opt.out == "-";
  std::ostream& heading = (opt.csv || json_to_stdout) ? err : out;

  if (!json_to_stdout) {
    TextTable summary({"Kernel", "Machine", "Bound", "t2sol[s]", "Gflop/s",
                       "%peak", "Mem[GB/s]"});
    for (const auto& k : results.kernels) {
      for (const auto& m : k.machines) {
        summary.row()
            .cell(k.info.abbrev)
            .cell(m.cpu.short_name)
            .cell(std::string(model::to_string(m.perf.bound)))
            .num(m.perf.seconds, 3)
            .num(m.perf.gflops, 1)
            .num(m.perf.pct_of_peak, 1)
            .num(m.perf.mem_throughput_gbs, 1)
            .done();
      }
    }
    heading << "Study summary (" << engine.stats().kernel_runs
            << " kernel run(s), " << engine.stats().machine_evals
            << " machine eval(s)):\n";
    print(summary, opt.csv, out);
  }

  if (!opt.out.empty()) {
    const auto doc = io::to_json(results);
    if (json_to_stdout) {
      out << io::dump(doc) << "\n";
    } else {
      io::save_file(opt.out, doc);
      err << "[fpr] wrote " << opt.out << "\n";
    }
  }
  return kExitOk;
}

/// `fpr explore`: the Sec. VII what-if sweep — derive variants of a base
/// machine, evaluate every kernel on each, and score the variants
/// against the base (time/energy geomeans, FP64 %-of-peak, the Fig. 7
/// site-weighted projection).
int cmd_explore(const RunOptions& opt, std::ostream& out, std::ostream& err) {
  study::ExploreConfig cfg;
  if (opt.golden) {
    cfg = study::golden_explore_config();
  } else {
    std::string bad;
    cfg.kernels = resolve_kernels(opt.kernels, bad);
    if (!bad.empty()) return usage_error(err, bad);
    cfg.base = opt.base;
    cfg.variants = opt.variants;
    cfg.scale = opt.scale;
    cfg.threads = opt.threads;
    cfg.seed = opt.seed;
    cfg.trace_refs = opt.trace_refs;
  }
  // Job counts never change the results, so they stay user-controlled
  // even under --golden.
  cfg.jobs = opt.jobs;
  cfg.kernel_jobs = opt.kernel_jobs;

  err << "[fpr] explore: base " << cfg.base << ", "
      << (cfg.variants.empty() ? std::string("built-in variant grid")
                               : std::to_string(cfg.variants.size()) +
                                     " variant(s)")
      << ", " << cfg.kernels.size()
      << " kernel(s) (0 = all), jobs=" << cfg.jobs
      << ", kernel-jobs=" << cfg.kernel_jobs << "\n";

  study::ExploreEngine engine(cfg);
  const auto results = engine.run();
  const bool json_to_stdout = opt.out == "-";
  std::ostream& heading = (opt.csv || json_to_stdout) ? err : out;

  if (!json_to_stdout) {
    TextTable summary({"Variant", "Spec", "GeoT2sol", "GeoEnergy",
                       "FP64%peak", "Site%peak"});
    auto add_summary = [&](const study::VariantScore& v) {
      summary.row()
          .cell(v.name())
          .cell(v.variant.spec.empty() ? "(base)" : v.variant.spec)
          .num(v.geomean_time_ratio, 3)
          .num(v.geomean_energy_ratio, 3)
          .num(v.mean_fp64_pct_peak, 2)
          .num(v.site_pct_peak, 2)
          .done();
    };
    add_summary(results.baseline);
    for (const auto& v : results.variants) add_summary(v);
    heading << "Variant scorecard vs " << results.base
            << " (ratios < 1 = variant better; " << engine.stats().kernel_runs
            << " kernel run(s), " << engine.stats().machine_evals
            << " machine eval(s), " << engine.stats().sim_hits
            << " memoized replay(s)):\n";
    print(summary, opt.csv, out);

    TextTable detail({"Kernel", "Variant", "Bound", "t2sol[s]", "xBase",
                      "xBaseEnergy", "FP64%peak"});
    std::vector<const study::VariantScore*> all{&results.baseline};
    for (const auto& v : results.variants) all.push_back(&v);
    for (std::size_t ki = 0; ki < results.baseline.kernels.size(); ++ki) {
      for (const auto* v : all) {
        const auto& p = v->kernels[ki];
        detail.row()
            .cell(p.abbrev)
            .cell(v->name())
            .cell(std::string(model::to_string(p.perf.bound)))
            .num(p.perf.seconds, 3)
            .num(p.time_ratio, 3)
            .num(p.energy_ratio, 3)
            .num(p.fp64_pct_peak, 2)
            .done();
      }
    }
    heading << "Per-kernel projection:\n";
    print(detail, opt.csv, out);
  }

  if (!opt.out.empty()) {
    const auto doc = io::to_json(results);
    if (json_to_stdout) {
      out << io::dump(doc) << "\n";
    } else {
      io::save_file(opt.out, doc);
      err << "[fpr] wrote " << opt.out << "\n";
    }
  }
  return kExitOk;
}

/// `fpr pareto`: the design-space search — compose derive_variant
/// transforms under the area/TDP budget box and print the non-dominated
/// frontier over the selected objectives.
int cmd_pareto(const RunOptions& opt, std::ostream& out, std::ostream& err) {
  study::ParetoConfig cfg;
  std::string bad;
  cfg.kernels = resolve_kernels(opt.kernels, bad);
  if (!bad.empty()) return usage_error(err, bad);
  cfg.base = opt.base;
  cfg.scale = opt.scale;
  cfg.threads = opt.threads;
  cfg.seed = opt.seed;
  cfg.trace_refs = opt.trace_refs;
  cfg.jobs = opt.jobs;
  cfg.kernel_jobs = opt.kernel_jobs;
  cfg.search_seed = opt.search_seed;
  cfg.rounds = opt.rounds;
  cfg.explorers = opt.explorers;
  cfg.max_depth = opt.max_depth;
  cfg.budget.max_area_ratio = opt.budget_area;
  cfg.budget.max_tdp_ratio = opt.budget_tdp;
  if (!opt.objectives.empty()) {
    cfg.objectives.clear();
    for (const auto& name : opt.objectives) {
      try {
        cfg.objectives.push_back(study::objective_from_string(name));
      } catch (const std::invalid_argument& e) {
        return usage_error(err, e.what());
      }
    }
  }

  err << "[fpr] pareto: base " << cfg.base << ", budget area<="
      << cfg.budget.max_area_ratio << " tdp<=" << cfg.budget.max_tdp_ratio
      << ", " << cfg.rounds << " round(s), depth<=" << cfg.max_depth
      << ", jobs=" << cfg.jobs << ", kernel-jobs=" << cfg.kernel_jobs << "\n";

  study::ParetoEngine engine(cfg);
  const auto results = engine.run();
  const auto& st = engine.stats();
  const bool json_to_stdout = opt.out == "-";
  std::ostream& heading = (opt.csv || json_to_stdout) ? err : out;

  if (!json_to_stdout) {
    TextTable frontier({"Variant", "Spec", "GeoT2sol", "GeoEnergy",
                        "Site%peak", "Area", "TDP"});
    for (const auto& p : results.frontier) {
      frontier.row()
          .cell(p.name())
          .cell(p.spec().empty() ? "(base)" : p.spec())
          .num(p.score.geomean_time_ratio, 3)
          .num(p.score.geomean_energy_ratio, 3)
          .num(p.score.site_pct_peak, 2)
          .num(p.budget.area_ratio, 3)
          .num(p.budget.tdp_ratio, 3)
          .done();
    }
    heading << "Pareto frontier vs " << results.base
            << " (ratios < 1 = candidate better; " << results.frontier.size()
            << " point(s)):\n";
    print(frontier, opt.csv, out);
  }

  err << "[fpr] pareto search: " << st.generated << " candidate(s), "
      << st.evaluated << " evaluated, " << st.deduped << " duplicate(s), "
      << st.over_budget << " over budget, " << st.invalid << " invalid, "
      << st.rounds << " round(s); " << st.evaluator.memo_hits
      << " profile-memo hit(s), " << st.evaluator.memo_misses
      << " miss(es)\n";

  if (!opt.out.empty()) {
    const auto doc = io::to_json(results);
    if (json_to_stdout) {
      out << io::dump(doc) << "\n";
    } else {
      io::save_file(opt.out, doc);
      err << "[fpr] wrote " << opt.out << "\n";
    }
  }
  return kExitOk;
}

/// `fpr memsim`: expose the hierarchy simulation directly — one row per
/// (kernel, machine) with the per-level hit rates the model consumes
/// (the stand-in for the paper's PCM counter readings). Kernels run once
/// (instrumented, at --scale) to publish their access-pattern specs;
/// every replay goes through the command context's SimCache.
int cmd_memsim(const RunOptions& opt, std::ostream& out, std::ostream& err) {
  std::string bad;
  const auto selection = resolve_kernels(opt.kernels, bad);
  if (!bad.empty()) return usage_error(err, bad);

  err << "[fpr] memsim: " << selection.size() << " kernel(s) at scale "
      << opt.scale << ", refs=" << opt.trace_refs << ", scale-shift="
      << opt.scale_shift << ", shard-jobs=" << opt.shard_jobs << "\n";

  kernels::RunConfig rc;
  rc.scale = opt.scale;
  rc.threads = opt.threads;
  rc.seed = opt.seed;

  ExecutionContext ctx(opt.threads);
  memsim::SimCache* cache = ctx.sim_cache().get();
  // Shard each replay across the context pool when asked. Results are
  // identical for every J (property-tested), so the table below — and
  // the SimCache entries the replays populate — never depend on it.
  memsim::ShardPlan shards;
  if (opt.shard_jobs > 0) {
    shards.pool = &ctx.pool();
    shards.jobs = opt.shard_jobs;
  }

  TextTable t({"Kernel", "Machine", "L1h%", "L2h%", "Last", "LLh%",
               "Offchip%", "DRAM%"});
  for (const auto& abbrev : selection) {
    const auto kernel = kernels::make(abbrev);
    const auto meas = kernel->run(ctx, rc);
    for (const auto& cpu : arch::all_machines()) {
      const auto sliced = model::per_core_slice(meas.access, cpu.cores);
      const auto res = memsim::simulate_pattern_cached(
          cache, cpu, sliced, opt.trace_refs, model::kProfileSeed,
          opt.scale_shift, shards);
      const std::string last = cpu.has_mcdram() ? "MCDRAM$" : "LLC";
      t.row()
          .cell(abbrev)
          .cell(cpu.short_name)
          .num(100.0 * res.hit_rate("L1"), 2)
          .num(100.0 * res.hit_rate("L2"), 2)
          .cell(last)
          .num(100.0 * res.hit_rate(last), 2)
          .num(100.0 * (1.0 - res.served_at_or_above("L2")), 2)
          .num(100.0 * res.dram_fraction(), 2)
          .done();
    }
  }

  std::ostream& heading = opt.csv ? err : out;
  heading << "Simulated per-level hit rates (" << opt.trace_refs
          << " refs, capacities/footprints scaled by 2^-" << opt.scale_shift
          << "):\n";
  print(t, opt.csv, out);
  const auto cs = cache->stats();
  err << "[fpr] memsim cache: " << cs.hits << " hit(s), " << cs.misses
      << " simulation(s)\n";
  return kExitOk;
}

std::string fmt_hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Basename of `path` without its extension — the table's "Trace" cell.
std::string trace_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name.resize(dot);
  return name.empty() ? path : name;
}

/// `fpr trace FILE`: replay a recorded fpr-trace binary through the
/// same hierarchy simulation `fpr memsim` uses and print the same
/// per-machine hit-rate columns (so rows are directly comparable:
/// `--csv` output matches memsim's minus the leading kernel/trace
/// cell). Replays go through the context SimCache keyed by the trace's
/// content digest, and --shard-jobs shards them bit-identically.
int cmd_trace(const RunOptions& opt, std::ostream& out, std::ostream& err) {
  if (opt.positional.size() != 1) {
    return usage_error(err, "trace needs exactly one fpr-trace file");
  }
  const std::string& path = opt.positional.front();

  // Resolve --machine names before touching the file: usage errors
  // should win over input errors.
  const auto all = arch::all_machines();
  std::vector<arch::CpuSpec> machines;
  if (opt.machines.empty()) {
    machines = all;
  } else {
    for (const auto& name : opt.machines) {
      const arch::CpuSpec* found = nullptr;
      for (const auto& cpu : all) {
        if (cpu.short_name == name) found = &cpu;
      }
      if (found == nullptr) {
        return usage_error(err, "unknown machine '" + name +
                                    "' (expected a Table I short name)");
      }
      machines.push_back(*found);
    }
  }

  io::TraceInfo info;
  try {
    info = io::read_trace_info(path);
  } catch (const io::TraceFormatError& e) {
    err << "fpr trace: " << e.what() << "\n";
    return kExitBadInput;
  }
  if (info.records <= opt.warmup) {
    return usage_error(err, "--warmup " + std::to_string(opt.warmup) +
                                " leaves no measurable records ('" + path +
                                "' holds " + std::to_string(info.records) +
                                ")");
  }
  const std::uint64_t avail = info.records - opt.warmup;
  const std::uint64_t refs =
      opt.refs_explicit ? std::min(opt.trace_refs, avail) : avail;

  err << "[fpr] trace: '" << path << "', " << info.records
      << " record(s), digest " << fmt_hex64(info.digest) << ", refs=" << refs
      << ", warmup=" << opt.warmup << ", scale-shift=" << opt.scale_shift
      << ", shard-jobs=" << opt.shard_jobs << "\n";

  ExecutionContext ctx(opt.threads);
  memsim::SimCache* cache = ctx.sim_cache().get();
  memsim::ShardPlan shards;
  if (opt.shard_jobs > 0) {
    shards.pool = &ctx.pool();
    shards.jobs = opt.shard_jobs;
  }

  const std::string stem = trace_stem(path);
  const bool json_to_stdout = opt.out == "-";
  TextTable t({"Trace", "Machine", "L1h%", "L2h%", "Last", "LLh%",
               "Offchip%", "DRAM%"});
  io::Json machines_json = io::Json::array();
  try {
    for (const auto& cpu : machines) {
      const auto res = io::replay_trace_cached(
          cache, cpu, path, refs, opt.warmup, opt.scale_shift, shards);
      const std::string last = cpu.has_mcdram() ? "MCDRAM$" : "LLC";
      t.row()
          .cell(stem)
          .cell(cpu.short_name)
          .num(100.0 * res.hit_rate("L1"), 2)
          .num(100.0 * res.hit_rate("L2"), 2)
          .cell(last)
          .num(100.0 * res.hit_rate(last), 2)
          .num(100.0 * (1.0 - res.served_at_or_above("L2")), 2)
          .num(100.0 * res.dram_fraction(), 2)
          .done();
      if (!opt.out.empty()) {
        const auto mem =
            model::profile_trace(cpu, res, info.working_set_bytes());
        io::Json m = io::Json::object();
        m.set("machine", std::string(cpu.short_name));
        io::Json levels = io::Json::array();
        for (const auto& l : res.levels) {
          io::Json e = io::Json::object();
          e.set("name", l.name);
          e.set("hits", l.stats.hits);
          e.set("misses", l.stats.misses);
          e.set("writebacks", l.stats.writebacks);
          levels.push(std::move(e));
        }
        m.set("levels", std::move(levels));
        m.set("mem", io::to_json(mem));
        machines_json.push(std::move(m));
      }
    }
  } catch (const io::TraceFormatError& e) {
    err << "fpr trace: " << e.what() << "\n";
    return kExitBadInput;
  }

  std::ostream& heading = (opt.csv || json_to_stdout) ? err : out;
  heading << "Simulated per-level hit rates for '" << stem << "' (" << refs
          << " measured refs, capacities scaled by 2^-" << opt.scale_shift
          << "):\n";
  if (!json_to_stdout) print(t, opt.csv, out);

  if (!opt.out.empty()) {
    io::Json doc = io::Json::object();
    doc.set("format", "fpr-trace-profile");
    doc.set("version", std::uint64_t{1});
    io::Json tj = io::Json::object();
    tj.set("file", path);
    tj.set("records", info.records);
    tj.set("digest", fmt_hex64(info.digest));
    tj.set("refs", refs);
    tj.set("warmup", opt.warmup);
    tj.set("scale_shift", opt.scale_shift);
    tj.set("touched_lines", info.touched_lines);
    tj.set("working_set_bytes", info.working_set_bytes());
    doc.set("trace", std::move(tj));
    doc.set("machines", std::move(machines_json));
    if (json_to_stdout) {
      out << io::dump(doc) << "\n";
    } else {
      io::save_file(opt.out, doc);
      err << "[fpr] wrote " << opt.out << "\n";
    }
  }
  const auto cs = cache->stats();
  err << "[fpr] trace cache: " << cs.hits << " hit(s), " << cs.misses
      << " replay(s)\n";
  return kExitOk;
}

/// Formats diff values across the wildly varying metric magnitudes.
std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Accumulates per-metric comparisons between two results files.
class DiffReport {
 public:
  explicit DiffReport(double tolerance) : tolerance_(tolerance) {}

  void metric(const std::string& kernel, const std::string& machine,
              const std::string& name, double a, double b) {
    ++compared_;
    // Non-finite values never hide behind NaN comparisons: NaN-vs-NaN
    // and equal infinities count as identical, anything else is an
    // infinite delta that fails every tolerance.
    double delta;
    if (std::isnan(a) || std::isnan(b)) {
      delta = std::isnan(a) && std::isnan(b)
                  ? 0.0
                  : std::numeric_limits<double>::infinity();
    } else if (std::isinf(a) || std::isinf(b)) {
      delta = a == b ? 0.0 : std::numeric_limits<double>::infinity();
    } else {
      const double denom = std::max(std::abs(a), std::abs(b));
      delta = denom == 0.0 ? 0.0 : std::abs(a - b) / denom;
    }
    max_delta_ = std::max(max_delta_, delta);
    if (delta > tolerance_) {
      ++exceeding_;
      table_.row()
          .cell(kernel)
          .cell(machine)
          .cell(name)
          .cell(fmt_g(a))
          .cell(fmt_g(b))
          .cell(fmt_g(delta))
          .done();
    }
  }

  void mismatch(const std::string& kernel, const std::string& machine,
                const std::string& name, const std::string& a,
                const std::string& b) {
    ++compared_;
    if (a == b) return;
    ++exceeding_;
    table_.row()
        .cell(kernel)
        .cell(machine)
        .cell(name)
        .cell(a)
        .cell(b)
        .cell("-")
        .done();
  }

  [[nodiscard]] bool ok() const { return exceeding_ == 0; }
  [[nodiscard]] const TextTable& table() const { return table_; }
  [[nodiscard]] std::size_t compared() const { return compared_; }
  [[nodiscard]] std::size_t exceeding() const { return exceeding_; }
  [[nodiscard]] double max_delta() const { return max_delta_; }

 private:
  double tolerance_;
  TextTable table_{{"Kernel", "Machine", "Metric", "A", "B", "RelDelta"}};
  std::size_t compared_ = 0;
  std::size_t exceeding_ = 0;
  double max_delta_ = 0.0;
};

/// The (MemoryProfile, EvalResult) metric rows shared by the study and
/// explore comparisons.
void diff_perf_mem(DiffReport& d, const std::string& kernel,
                   const std::string& mc, const model::MemoryProfile& ma,
                   const model::MemoryProfile& mb, const model::EvalResult& pa,
                   const model::EvalResult& pb) {
  d.mismatch(kernel, mc, "bound", std::string(model::to_string(pa.bound)),
             std::string(model::to_string(pb.bound)));
  d.metric(kernel, mc, "t2sol", pa.seconds, pb.seconds);
  d.metric(kernel, mc, "gflops", pa.gflops, pb.gflops);
  d.metric(kernel, mc, "pct_of_peak", pa.pct_of_peak, pb.pct_of_peak);
  d.metric(kernel, mc, "mem_throughput_gbs", pa.mem_throughput_gbs,
           pb.mem_throughput_gbs);
  d.metric(kernel, mc, "power_w", pa.power_w, pb.power_w);
  d.metric(kernel, mc, "l2_hit", ma.l2_hit, mb.l2_hit);
  d.metric(kernel, mc, "llc_hit", ma.llc_hit, mb.llc_hit);
  d.metric(kernel, mc, "offchip_fraction", ma.offchip_fraction,
           mb.offchip_fraction);
  d.metric(kernel, mc, "offchip_bytes", ma.offchip_bytes, mb.offchip_bytes);
  d.metric(kernel, mc, "dram_bytes", ma.dram_bytes, mb.dram_bytes);
  d.metric(kernel, mc, "mcdram_capture", ma.mcdram_capture,
           mb.mcdram_capture);
  d.metric(kernel, mc, "effective_bw_gbs", ma.effective_bw_gbs,
           mb.effective_bw_gbs);
  d.metric(kernel, mc, "latency_ns", ma.latency_ns, mb.latency_ns);
  d.metric(kernel, mc, "dep_refs", ma.dep_refs, mb.dep_refs);
}

void diff_machine(DiffReport& d, const std::string& kernel,
                  const study::MachineResult& a,
                  const study::MachineResult& b) {
  const std::string& mc = a.cpu.short_name;
  diff_perf_mem(d, kernel, mc, a.mem, b.mem, a.perf, b.perf);
  if (a.freq_sweep.size() != b.freq_sweep.size()) {
    d.mismatch(kernel, mc, "freq_sweep.points",
               std::to_string(a.freq_sweep.size()),
               std::to_string(b.freq_sweep.size()));
    return;
  }
  for (std::size_t i = 0; i < a.freq_sweep.size(); ++i) {
    const auto& [fsa, eva] = a.freq_sweep[i];
    const auto& [fsb, evb] = b.freq_sweep[i];
    const std::string name = "t2sol@" + fmt_double(fsa.ghz, 2) + "GHz" +
                             (fsa.turbo ? "+TB" : "");
    if (fsa.ghz != fsb.ghz || fsa.turbo != fsb.turbo) {
      // Encode the turbo flag too, so a turbo-only mismatch still
      // produces unequal strings (and therefore a reported row).
      d.mismatch(kernel, mc, name,
                 fmt_g(fsa.ghz) + (fsa.turbo ? "+TB" : ""),
                 fmt_g(fsb.ghz) + (fsb.turbo ? "+TB" : ""));
      continue;
    }
    d.metric(kernel, mc, name, eva.seconds, evb.seconds);
  }
}

void diff_kernel(DiffReport& d, const study::KernelResult& a,
                 const study::KernelResult& b) {
  const std::string& kn = a.info.abbrev;
  d.metric(kn, "-", "ops.fp64", static_cast<double>(a.meas.ops.fp64),
           static_cast<double>(b.meas.ops.fp64));
  d.metric(kn, "-", "ops.fp32", static_cast<double>(a.meas.ops.fp32),
           static_cast<double>(b.meas.ops.fp32));
  d.metric(kn, "-", "ops.int", static_cast<double>(a.meas.ops.int_ops),
           static_cast<double>(b.meas.ops.int_ops));
  d.metric(kn, "-", "bytes_read", static_cast<double>(a.meas.ops.bytes_read),
           static_cast<double>(b.meas.ops.bytes_read));
  d.metric(kn, "-", "bytes_written",
           static_cast<double>(a.meas.ops.bytes_written),
           static_cast<double>(b.meas.ops.bytes_written));
  d.metric(kn, "-", "ops.branches", static_cast<double>(a.meas.ops.branches),
           static_cast<double>(b.meas.ops.branches));
  d.metric(kn, "-", "working_set_bytes",
           static_cast<double>(a.meas.working_set_bytes),
           static_cast<double>(b.meas.working_set_bytes));
  d.metric(kn, "-", "checksum", a.meas.checksum, b.meas.checksum);

  for (const auto& ma : a.machines) {
    const study::MachineResult* mb = nullptr;
    for (const auto& m : b.machines) {
      if (m.cpu.short_name == ma.cpu.short_name) {
        mb = &m;
        break;
      }
    }
    if (mb == nullptr) {
      d.mismatch(kn, ma.cpu.short_name, "machine", "present", "missing");
      continue;
    }
    diff_machine(d, kn, ma, *mb);
  }
  for (const auto& mb : b.machines) {
    bool in_a = false;
    for (const auto& ma : a.machines) {
      if (ma.cpu.short_name == mb.cpu.short_name) {
        in_a = true;
        break;
      }
    }
    if (!in_a) d.mismatch(kn, mb.cpu.short_name, "machine", "missing",
                          "present");
  }
}

/// Explore comparison: variants matched by derived name, per-kernel
/// projections by abbreviation, plus the summary scores.
void diff_variant(DiffReport& d, const study::VariantScore& a,
                  const study::VariantScore& b) {
  const std::string& vn = a.name();
  d.metric("-", vn, "geomean_time_ratio", a.geomean_time_ratio,
           b.geomean_time_ratio);
  d.metric("-", vn, "geomean_energy_ratio", a.geomean_energy_ratio,
           b.geomean_energy_ratio);
  d.metric("-", vn, "mean_fp64_pct_peak", a.mean_fp64_pct_peak,
           b.mean_fp64_pct_peak);
  d.metric("-", vn, "site_pct_peak", a.site_pct_peak, b.site_pct_peak);
  for (const auto& pa : a.kernels) {
    const study::KernelProjection* pb = nullptr;
    for (const auto& p : b.kernels) {
      if (p.abbrev == pa.abbrev) {
        pb = &p;
        break;
      }
    }
    if (pb == nullptr) {
      d.mismatch(pa.abbrev, vn, "kernel", "present", "missing");
      continue;
    }
    diff_perf_mem(d, pa.abbrev, vn, pa.mem, pb->mem, pa.perf, pb->perf);
    d.metric(pa.abbrev, vn, "time_ratio", pa.time_ratio, pb->time_ratio);
    d.metric(pa.abbrev, vn, "energy_ratio", pa.energy_ratio,
             pb->energy_ratio);
    d.metric(pa.abbrev, vn, "fp64_pct_peak", pa.fp64_pct_peak,
             pb->fp64_pct_peak);
  }
  for (const auto& pb : b.kernels) {
    bool in_a = false;
    for (const auto& pa : a.kernels) {
      if (pa.abbrev == pb.abbrev) {
        in_a = true;
        break;
      }
    }
    if (!in_a) d.mismatch(pb.abbrev, vn, "kernel", "missing", "present");
  }
}

void diff_pareto(DiffReport& d, const study::ParetoResults& a,
                 const study::ParetoResults& b) {
  d.mismatch("-", "-", "base", a.base, b.base);
  d.metric("-", "-", "budget.max_area_ratio", a.budget.max_area_ratio,
           b.budget.max_area_ratio);
  d.metric("-", "-", "budget.max_tdp_ratio", a.budget.max_tdp_ratio,
           b.budget.max_tdp_ratio);
  auto join = [](const std::vector<study::Objective>& objs) {
    std::string s;
    for (const auto o : objs) {
      if (!s.empty()) s += ',';
      s += std::string(study::to_string(o));
    }
    return s;
  };
  d.mismatch("-", "-", "objectives", join(a.objectives), join(b.objectives));
  for (const auto& pa : a.frontier) {
    const auto* pb = b.find(pa.name());
    if (pb == nullptr) {
      d.mismatch("-", pa.name(), "frontier_point", "present", "missing");
      continue;
    }
    d.metric("-", pa.name(), "area_ratio", pa.budget.area_ratio,
             pb->budget.area_ratio);
    d.metric("-", pa.name(), "tdp_ratio", pa.budget.tdp_ratio,
             pb->budget.tdp_ratio);
    if (pa.objectives.size() != pb->objectives.size()) {
      d.mismatch("-", pa.name(), "objectives.points",
                 std::to_string(pa.objectives.size()),
                 std::to_string(pb->objectives.size()));
    } else {
      for (std::size_t i = 0; i < pa.objectives.size(); ++i) {
        d.metric("-", pa.name(), "objective[" + std::to_string(i) + "]",
                 pa.objectives[i], pb->objectives[i]);
      }
    }
    diff_variant(d, pa.score, pb->score);
  }
  for (const auto& pb : b.frontier) {
    if (a.find(pb.name()) == nullptr) {
      d.mismatch("-", pb.name(), "frontier_point", "missing", "present");
    }
  }
}

void diff_explore(DiffReport& d, const study::ExploreResults& a,
                  const study::ExploreResults& b) {
  d.mismatch("-", "-", "base", a.base, b.base);
  diff_variant(d, a.baseline, b.baseline);
  for (const auto& va : a.variants) {
    const auto* vb = b.find(va.name());
    if (vb == nullptr) {
      d.mismatch("-", va.name(), "variant", "present", "missing");
      continue;
    }
    diff_variant(d, va, *vb);
  }
  for (const auto& vb : b.variants) {
    if (a.find(vb.name()) == nullptr) {
      d.mismatch("-", vb.name(), "variant", "missing", "present");
    }
  }
}

int cmd_diff(const RunOptions& opt, std::ostream& out, std::ostream& err) {
  if (opt.positional.size() != 2) {
    return usage_error(err, "diff needs exactly two results files");
  }
  for (const auto& path : opt.positional) {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
      err << "fpr diff: cannot read input file '" << path
          << "': missing or unreadable\n";
      return kExitBadInput;
    }
  }
  const auto ja = io::load_file(opt.positional[0]);
  const auto jb = io::load_file(opt.positional[1]);
  const bool ea = io::is_explore_document(ja);
  const bool eb = io::is_explore_document(jb);
  const bool pa = io::is_pareto_document(ja);
  const bool pb = io::is_pareto_document(jb);
  if (ea != eb || pa != pb) {
    return usage_error(
        err, "cannot compare results files of different formats (study, "
             "explore, pareto)");
  }

  DiffReport d(opt.tolerance);
  if (pa) {
    diff_pareto(d, io::pareto_from_json(ja), io::pareto_from_json(jb));
  } else if (ea) {
    diff_explore(d, io::explore_from_json(ja), io::explore_from_json(jb));
  } else {
    const auto ra = io::study_from_json(ja);
    const auto rb = io::study_from_json(jb);
    for (const auto& ka : ra.kernels) {
      const auto* kb = rb.find(ka.info.abbrev);
      if (kb == nullptr) {
        d.mismatch(ka.info.abbrev, "-", "kernel", "present", "missing");
        continue;
      }
      diff_kernel(d, ka, *kb);
    }
    for (const auto& kb : rb.kernels) {
      if (ra.find(kb.info.abbrev) == nullptr) {
        d.mismatch(kb.info.abbrev, "-", "kernel", "missing", "present");
      }
    }
  }

  std::ostream& heading = opt.csv ? err : out;
  if (!d.ok()) {
    heading << "Metrics exceeding tolerance " << fmt_g(opt.tolerance)
            << ":\n";
    print(d.table(), opt.csv, out);
  }
  heading << (d.ok() ? "OK: " : "FAIL: ") << d.compared()
          << " metric(s) compared, " << d.exceeding()
          << " exceeding tolerance " << fmt_g(opt.tolerance)
          << " (max relative delta " << fmt_g(d.max_delta()) << ")\n";
  return d.ok() ? kExitOk : kExitFailure;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) return usage_error(err, "missing command");
  const std::string& command = args[0];
  if (command == "help" || command == "--help" || command == "-h") {
    out << kUsage;
    return kExitOk;
  }

  RunOptions opt;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("option " + arg + " needs a value");
      }
      return args[++i];
    };
    // Numeric parse wrapper: std::sto* exceptions carry messages like
    // "stod"; rethrow with the offending option and text instead.
    auto number = [&](auto parse) {
      const std::string& text = value();
      try {
        return parse(text);
      } catch (const std::exception&) {
        throw std::invalid_argument("invalid value '" + text + "' for " +
                                    arg);
      }
    };
    try {
      if (arg == "--csv") {
        opt.csv = true;
      } else if (arg == "--auto-threads") {
        opt.auto_threads = true;
      } else if (arg == "--kernel" || arg == "--kernels") {
        auto parts = split_csv(value());
        if (parts.empty()) {
          return usage_error(err, arg + " needs at least one abbreviation");
        }
        for (auto& k : parts) opt.kernels.push_back(std::move(k));
      } else if (arg == "--scale") {
        opt.scale = number([](const std::string& t) { return std::stod(t); });
        if (opt.scale <= 0.0) {
          return usage_error(err, "--scale must be > 0");
        }
      } else if (arg == "--threads") {
        opt.threads = number(parse_worker_count);
      } else if (arg == "--repeats") {
        opt.repeats =
            number([](const std::string& t) { return std::stoi(t); });
        if (opt.repeats < 1) {
          return usage_error(err, "--repeats must be >= 1");
        }
      } else if (arg == "--seed") {
        opt.seed = number(parse_u64);
      } else if (arg == "--jobs") {
        opt.jobs = number(parse_worker_count);
      } else if (arg == "--kernel-jobs") {
        opt.kernel_jobs = number(parse_worker_count);
      } else if (arg == "--trace-refs" || arg == "--refs") {
        opt.trace_refs = number(parse_u64);
        opt.refs_explicit = true;
        if (opt.trace_refs == 0) {
          return usage_error(err, arg + " must be > 0");
        }
      } else if (arg == "--warmup") {
        opt.warmup = number(parse_u64);
      } else if (arg == "--machine" || arg == "--machines") {
        auto parts = split_csv(value());
        if (parts.empty()) {
          return usage_error(err, arg + " needs at least one machine name");
        }
        for (auto& m : parts) opt.machines.push_back(std::move(m));
      } else if (arg == "--shard-jobs") {
        opt.shard_jobs = number(parse_worker_count);
      } else if (arg == "--scale-shift") {
        opt.scale_shift =
            number([](const std::string& t) { return parse_worker_count(t); });
        if (opt.scale_shift > 30) {
          return usage_error(err, "--scale-shift must be <= 30");
        }
      } else if (arg == "--base") {
        opt.base = value();
        if (opt.base.empty()) {
          return usage_error(err, "--base needs a machine short name");
        }
      } else if (arg == "--variants") {
        auto parts = split_csv(value());
        if (parts.empty()) {
          return usage_error(err, arg + " needs at least one variant spec");
        }
        for (auto& v : parts) opt.variants.push_back(std::move(v));
      } else if (arg == "--budget-area" || arg == "--budget-tdp") {
        const double f =
            number([](const std::string& t) { return std::stod(t); });
        if (!std::isfinite(f) || f <= 0.0) {
          return usage_error(err, arg + " must be finite and > 0");
        }
        (arg == "--budget-area" ? opt.budget_area : opt.budget_tdp) = f;
      } else if (arg == "--objectives") {
        auto parts = split_csv(value());
        if (parts.empty()) {
          return usage_error(err, arg + " needs at least one objective");
        }
        for (auto& o : parts) opt.objectives.push_back(std::move(o));
      } else if (arg == "--rounds") {
        opt.rounds = number(parse_worker_count);
      } else if (arg == "--explorers") {
        opt.explorers = number(parse_worker_count);
      } else if (arg == "--max-depth") {
        opt.max_depth = number(parse_worker_count);
        if (opt.max_depth == 0) {
          return usage_error(err, "--max-depth must be >= 1");
        }
      } else if (arg == "--search-seed") {
        opt.search_seed = number(parse_u64);
      } else if (arg == "--no-sweep") {
        opt.no_sweep = true;
      } else if (arg == "--timing") {
        opt.timing = true;
      } else if (arg == "--golden") {
        opt.golden = true;
      } else if (arg == "--out") {
        opt.out = value();
        if (opt.out.empty()) {
          return usage_error(err, "--out needs a non-empty path");
        }
      } else if (arg == "--tolerance") {
        opt.tolerance =
            number([](const std::string& t) { return std::stod(t); });
        if (opt.tolerance < 0.0 || !std::isfinite(opt.tolerance)) {
          return usage_error(err, "--tolerance must be >= 0");
        }
      } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
        return usage_error(err, "unknown option '" + arg + "'");
      } else {
        opt.positional.push_back(arg);
      }
    } catch (const std::invalid_argument& e) {
      return usage_error(err, e.what());
    }
  }

  // Only diff (two input files) and trace (one trace file) take
  // non-option arguments.
  if (command != "diff" && command != "trace" && !opt.positional.empty()) {
    return usage_error(err,
                       "unexpected argument '" + opt.positional.front() + "'");
  }

  try {
    if (command == "list") return cmd_list(opt.csv, out);
    if (command == "tables") return cmd_tables(opt.csv, out);
    if (command == "run") return cmd_run(opt, out, err);
    if (command == "study") return cmd_study(opt, out, err);
    if (command == "memsim") return cmd_memsim(opt, out, err);
    if (command == "trace") return cmd_trace(opt, out, err);
    if (command == "explore") return cmd_explore(opt, out, err);
    if (command == "pareto") return cmd_pareto(opt, out, err);
    if (command == "diff") return cmd_diff(opt, out, err);
  } catch (const std::exception& e) {
    err << "fpr: error: " << e.what() << "\n";
    return kExitFailure;
  }
  return usage_error(err, "unknown command '" + command + "'");
}

}  // namespace fpr::cli
