// `fpr` executable entry point: argv marshalling only; all behaviour
// lives in cli.cpp so the test suite can drive it in-process.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return fpr::cli::run_cli(args, std::cout, std::cerr);
}
